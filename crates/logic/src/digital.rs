//! Gate-level event-driven logic simulation.
//!
//! The analog layer (`carbon-spice` + the inverter/ring analyses)
//! establishes that a CNT technology has restoring gates with a
//! measurable stage delay; this module lifts that into a digital
//! abstraction: combinational networks of INV/NAND/NOR/BUF gates with a
//! per-gate delay, simulated with an event queue. The SUBNEG computer of
//! [`crate::computer`] executes on networks built here.

use std::collections::{BTreeMap, HashMap};

use crate::error::LogicError;

/// Kind of a logic gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR (modelled as a primitive; costs 4 NAND delays).
    Xor2,
    /// Level-sensitive D latch (inputs `[d, en]`): transparent while
    /// `en` is high, holding otherwise. A behavioral state element, as
    /// in HDL simulators — it avoids the power-on metastability race of
    /// a structural cross-coupled loop.
    DLatch,
}

impl GateKind {
    fn arity(self) -> usize {
        match self {
            Self::Inv | Self::Buf => 1,
            Self::Nand2 | Self::Nor2 | Self::Xor2 | Self::DLatch => 2,
        }
    }

    /// Evaluates the gate; `prev` is the output's current value (only
    /// the latch, a state element, reads it).
    fn eval(self, a: bool, b: bool, prev: bool) -> bool {
        match self {
            Self::Inv => !a,
            Self::Buf => a,
            Self::Nand2 => !(a && b),
            Self::Nor2 => !(a || b),
            Self::Xor2 => a ^ b,
            Self::DLatch => {
                if b {
                    a
                } else {
                    prev
                }
            }
        }
    }

    /// Delay in units of one inverter stage delay.
    fn delay_stages(self) -> u64 {
        match self {
            Self::Inv | Self::Buf => 1,
            Self::Nand2 | Self::Nor2 => 2,
            Self::Xor2 | Self::DLatch => 4,
        }
    }
}

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    inputs: [usize; 2],
    output: usize,
}

/// A combinational gate network over named nets.
///
/// # Examples
///
/// ```
/// use carbon_logic::digital::{GateKind, GateNetwork};
///
/// # fn main() -> Result<(), carbon_logic::LogicError> {
/// let mut net = GateNetwork::new();
/// net.add_gate(GateKind::Nand2, &["a", "b"], "nand_ab")?;
/// net.add_gate(GateKind::Inv, &["nand_ab"], "and_ab")?;
/// let out = net.evaluate(&[("a", true), ("b", true)])?;
/// assert_eq!(out.value("and_ab")?, true);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GateNetwork {
    net_names: Vec<String>,
    net_index: HashMap<String, usize>,
    gates: Vec<Gate>,
    driven: Vec<bool>,
}

/// Result of evaluating a [`GateNetwork`]: settled net values plus the
/// critical-path depth in inverter-stage delays.
#[derive(Debug, Clone)]
pub struct Evaluation {
    values: HashMap<String, bool>,
    /// Settling time of the slowest net, in inverter-stage delays.
    pub depth_stages: u64,
    /// Total gate evaluations performed (switching activity proxy).
    pub gate_evaluations: u64,
}

impl Evaluation {
    /// Builds an explicit power-on state to seed
    /// [`GateNetwork::evaluate_seeded`] with — the way sequential
    /// designs declare their reset state instead of racing a metastable
    /// cross-coupled loop from the symmetric all-low start.
    pub fn initial_state<I>(values: I) -> Self
    where
        I: IntoIterator<Item = (String, bool)>,
    {
        Self {
            values: values.into_iter().collect(),
            depth_stages: 0,
            gate_evaluations: 0,
        }
    }

    /// Value of a named net after settling.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for unknown nets.
    pub fn value(&self, net: &str) -> Result<bool, LogicError> {
        self.values
            .get(net)
            .copied()
            .ok_or_else(|| LogicError::InvalidParameter {
                reason: format!("unknown net '{net}'"),
            })
    }
}

impl GateNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    fn net(&mut self, name: &str) -> usize {
        if let Some(&i) = self.net_index.get(name) {
            return i;
        }
        let i = self.net_names.len();
        self.net_names.push(name.to_owned());
        self.net_index.insert(name.to_owned(), i);
        self.driven.push(false);
        i
    }

    /// Adds a gate driving `output` from `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] on arity mismatch or if
    /// the output net already has a driver.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[&str],
        output: &str,
    ) -> Result<(), LogicError> {
        if inputs.len() != kind.arity() {
            return Err(LogicError::InvalidParameter {
                reason: format!(
                    "{kind:?} takes {} inputs, got {}",
                    kind.arity(),
                    inputs.len()
                ),
            });
        }
        let in0 = self.net(inputs[0]);
        let in1 = if inputs.len() > 1 {
            self.net(inputs[1])
        } else {
            in0
        };
        let out = self.net(output);
        if self.driven[out] {
            return Err(LogicError::InvalidParameter {
                reason: format!("net '{output}' already has a driver"),
            });
        }
        self.driven[out] = true;
        self.gates.push(Gate {
            kind,
            inputs: [in0, in1],
            output: out,
        });
        Ok(())
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the named net is driven by a gate output.
    pub fn is_driven(&self, net: &str) -> bool {
        self.net_index
            .get(net)
            .map(|&i| self.driven[i])
            .unwrap_or(false)
    }

    /// Iterates over the gates as `(kind, [input names], output name)` —
    /// the structural view the transistor-level synthesizer consumes.
    pub fn gates_iter(&self) -> impl Iterator<Item = (GateKind, Vec<String>, String)> + '_ {
        self.gates.iter().map(|g| {
            let ins = (0..g.kind.arity())
                .map(|k| self.net_names[g.inputs[k]].clone())
                .collect();
            (g.kind, ins, self.net_names[g.output].clone())
        })
    }

    /// Evaluates the network for the given primary-input assignment,
    /// propagating events until quiescence. All nets start low (a
    /// power-on evaluation); for sequential elements use
    /// [`evaluate_seeded`](Self::evaluate_seeded).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] if an input name is
    /// unknown, drives a gated net, or the network does not settle
    /// (combinational loop).
    pub fn evaluate(&self, inputs: &[(&str, bool)]) -> Result<Evaluation, LogicError> {
        self.evaluate_seeded(inputs, None)
    }

    /// Evaluates with net values seeded from a previous evaluation —
    /// the mechanism that lets cross-coupled latch loops *hold state*:
    /// an SR latch evaluated from its previous settled state keeps its
    /// output when both inputs are inactive, instead of racing from the
    /// power-on state.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](Self::evaluate); a genuinely metastable
    /// stimulus (e.g. releasing both SR inputs from the symmetric
    /// power-on state) still reports a non-settling network.
    pub fn evaluate_seeded(
        &self,
        inputs: &[(&str, bool)],
        seed: Option<&Evaluation>,
    ) -> Result<Evaluation, LogicError> {
        let mut values = vec![false; self.net_names.len()];
        let mut known = vec![false; self.net_names.len()];
        if let Some(prev) = seed {
            for (i, name) in self.net_names.iter().enumerate() {
                if let Some(&v) = prev.values.get(name) {
                    values[i] = v;
                    known[i] = true;
                }
            }
        }
        for (name, v) in inputs {
            let &i = self
                .net_index
                .get(*name)
                .ok_or_else(|| LogicError::InvalidParameter {
                    reason: format!("unknown input net '{name}'"),
                })?;
            if self.driven[i] {
                return Err(LogicError::InvalidParameter {
                    reason: format!("net '{name}' is gate-driven, cannot force"),
                });
            }
            values[i] = *v;
            known[i] = true;
        }
        // Undriven, unforced nets default to false (pulled low).
        // Event-driven propagation with *delayed* value updates: a gate
        // evaluated at time t schedules its output value at t + delay;
        // values change only when their event time arrives, so timing
        // depth is physical and a combinational loop oscillates until
        // the event budget trips instead of settling spuriously.
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.net_names.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            fanout[g.inputs[0]].push(gi);
            if g.kind.arity() > 1 {
                fanout[g.inputs[1]].push(gi);
            }
        }
        // time → (net → scheduled value); later schedules at the same
        // time overwrite earlier ones (last evaluation wins). The
        // decision to schedule compares against the *latest scheduled*
        // value of the net (falling back to its current value), so a
        // correction is emitted even when a stale event is still in
        // flight — omitting that is the classic transport-delay
        // cancellation bug.
        let mut queue: BTreeMap<u64, HashMap<usize, bool>> = BTreeMap::new();
        let mut last_scheduled: Vec<Option<bool>> = vec![None; self.net_names.len()];
        let mut evaluations: u64 = 0;
        let limit = (self.gates.len() as u64 + 1) * 1000;
        let mut depth = 0;
        // Initial evaluation of every gate at t = 0.
        for g in &self.gates {
            evaluations += 1;
            let new = g
                .kind
                .eval(values[g.inputs[0]], values[g.inputs[1]], values[g.output]);
            queue
                .entry(g.kind.delay_stages())
                .or_default()
                .insert(g.output, new);
            last_scheduled[g.output] = Some(new);
        }
        while let Some((&t, _)) = queue.iter().next() {
            let updates = queue.remove(&t).expect("key exists");
            let mut changed: Vec<usize> = Vec::new();
            for (net, val) in updates {
                if !known[net] || values[net] != val {
                    values[net] = val;
                    known[net] = true;
                    depth = depth.max(t);
                    changed.push(net);
                }
            }
            let mut affected: Vec<usize> = changed
                .iter()
                .flat_map(|&n| fanout[n].iter().copied())
                .collect();
            affected.sort_unstable();
            affected.dedup();
            for gi in affected {
                evaluations += 1;
                if evaluations > limit {
                    return Err(LogicError::InvalidParameter {
                        reason: "network does not settle (combinational loop?)".into(),
                    });
                }
                let g = &self.gates[gi];
                let new = g
                    .kind
                    .eval(values[g.inputs[0]], values[g.inputs[1]], values[g.output]);
                let effective = last_scheduled[g.output].unwrap_or(values[g.output]);
                if new != effective || !known[g.output] {
                    queue
                        .entry(t + g.kind.delay_stages())
                        .or_default()
                        .insert(g.output, new);
                    last_scheduled[g.output] = Some(new);
                }
            }
        }
        let map = self
            .net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), values[i]))
            .collect();
        Ok(Evaluation {
            values: map,
            depth_stages: depth,
            gate_evaluations: evaluations,
        })
    }

    /// Builds a cross-coupled-NOR SR latch: `q = NOR(r, qbar)`,
    /// `qbar = NOR(s, q)`, producing nets `<prefix>_q` and
    /// `<prefix>_qbar`. Evaluate with
    /// [`evaluate_seeded`](Self::evaluate_seeded) to hold state.
    ///
    /// # Errors
    ///
    /// Propagates gate-construction errors (duplicate drivers if the
    /// prefix is reused).
    pub fn add_sr_latch(&mut self, s: &str, r: &str, prefix: &str) -> Result<(), LogicError> {
        let q = format!("{prefix}_q");
        let qbar = format!("{prefix}_qbar");
        self.add_gate(GateKind::Nor2, &[r, &qbar], &q)?;
        self.add_gate(GateKind::Nor2, &[s, &q], &qbar)?;
        Ok(())
    }

    /// Builds a gated (level-sensitive) D latch: transparent while `en`
    /// is high, holding while low. Produces nets `<prefix>_q` and
    /// `<prefix>_qbar`. Implemented with the behavioral
    /// [`GateKind::DLatch`] primitive so the hold state is well defined
    /// from power-on (seed it with
    /// [`Evaluation::initial_state`] to choose the reset value).
    ///
    /// # Errors
    ///
    /// Propagates gate-construction errors.
    pub fn add_d_latch(&mut self, d: &str, en: &str, prefix: &str) -> Result<(), LogicError> {
        let q = format!("{prefix}_q");
        let qbar = format!("{prefix}_qbar");
        self.add_gate(GateKind::DLatch, &[d, en], &q)?;
        self.add_gate(GateKind::Inv, &[&q], &qbar)?;
        Ok(())
    }

    /// Builds a 1-bit full subtractor: `diff = a − b − bin`,
    /// producing nets `<prefix>_diff` and `<prefix>_bout`.
    ///
    /// # Errors
    ///
    /// Propagates gate-construction errors (duplicate drivers if the
    /// prefix is reused).
    pub fn add_full_subtractor(
        &mut self,
        a: &str,
        b: &str,
        bin: &str,
        prefix: &str,
    ) -> Result<(), LogicError> {
        let x1 = format!("{prefix}_x1");
        let diff = format!("{prefix}_diff");
        let na = format!("{prefix}_na");
        let nx1 = format!("{prefix}_nx1");
        let bout = format!("{prefix}_bout");
        self.add_gate(GateKind::Xor2, &[a, b], &x1)?;
        self.add_gate(GateKind::Xor2, &[&x1, bin], &diff)?;
        // bout = (!a & b) | (!(a^b) & bin)
        self.add_gate(GateKind::Inv, &[a], &na)?;
        self.add_gate(GateKind::Inv, &[&x1], &nx1)?;
        let nand1 = format!("{prefix}_nand1");
        let nand2 = format!("{prefix}_nand2");
        self.add_gate(GateKind::Nand2, &[&na, b], &nand1)?;
        self.add_gate(GateKind::Nand2, &[&nx1, bin], &nand2)?;
        self.add_gate(GateKind::Nand2, &[&nand1, &nand2], &bout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_truth_tables() {
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Nand2, &["a", "b"], "nand").unwrap();
        n.add_gate(GateKind::Nor2, &["a", "b"], "nor").unwrap();
        n.add_gate(GateKind::Xor2, &["a", "b"], "xor").unwrap();
        n.add_gate(GateKind::Inv, &["a"], "na").unwrap();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let e = n.evaluate(&[("a", a), ("b", b)]).unwrap();
            assert_eq!(e.value("nand").unwrap(), !(a && b));
            assert_eq!(e.value("nor").unwrap(), !(a || b));
            assert_eq!(e.value("xor").unwrap(), a ^ b);
            assert_eq!(e.value("na").unwrap(), !a);
        }
    }

    #[test]
    fn chained_gates_accumulate_depth() {
        // All nets power up low; applying a = true ripples x2 high at
        // stage 2 (x1 is already at its settled value), so a 3-chain
        // settles in 2 stages and a 5-chain in 4.
        let mut chain3 = GateNetwork::new();
        chain3.add_gate(GateKind::Inv, &["a"], "x1").unwrap();
        chain3.add_gate(GateKind::Inv, &["x1"], "x2").unwrap();
        chain3.add_gate(GateKind::Inv, &["x2"], "x3").unwrap();
        let e3 = chain3.evaluate(&[("a", true)]).unwrap();
        assert!(!e3.value("x3").unwrap());
        let mut chain5 = GateNetwork::new();
        chain5.add_gate(GateKind::Inv, &["a"], "x1").unwrap();
        for k in 2..=5 {
            chain5
                .add_gate(GateKind::Inv, &[&format!("x{}", k - 1)], &format!("x{k}"))
                .unwrap();
        }
        let e5 = chain5.evaluate(&[("a", true)]).unwrap();
        assert!(!e5.value("x5").unwrap());
        assert!(
            e5.depth_stages > e3.depth_stages,
            "5-chain {} vs 3-chain {}",
            e5.depth_stages,
            e3.depth_stages
        );
        assert!(e3.depth_stages >= 2, "depth {}", e3.depth_stages);
    }

    #[test]
    fn duplicate_driver_rejected() {
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Inv, &["a"], "x").unwrap();
        assert!(n.add_gate(GateKind::Inv, &["b"], "x").is_err());
    }

    #[test]
    fn arity_checked() {
        let mut n = GateNetwork::new();
        assert!(n.add_gate(GateKind::Inv, &["a", "b"], "x").is_err());
        assert!(n.add_gate(GateKind::Nand2, &["a"], "x").is_err());
    }

    #[test]
    fn forcing_a_driven_net_rejected() {
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Inv, &["a"], "x").unwrap();
        assert!(n.evaluate(&[("x", true)]).is_err());
        assert!(n.evaluate(&[("ghost", true)]).is_err());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Inv, &["a"], "b").unwrap();
        n.add_gate(GateKind::Inv, &["b"], "a").unwrap();
        assert!(n.evaluate(&[]).is_err());
    }

    #[test]
    fn full_subtractor_truth_table() {
        let mut n = GateNetwork::new();
        n.add_full_subtractor("a", "b", "bin", "s0").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for bin in [false, true] {
                    let e = n.evaluate(&[("a", a), ("b", b), ("bin", bin)]).unwrap();
                    let expect = (a as i8) - (b as i8) - (bin as i8);
                    let diff = expect.rem_euclid(2) == 1;
                    let borrow = expect < 0;
                    assert_eq!(e.value("s0_diff").unwrap(), diff, "diff {a}{b}{bin}");
                    assert_eq!(e.value("s0_bout").unwrap(), borrow, "bout {a}{b}{bin}");
                }
            }
        }
    }

    #[test]
    fn sr_latch_sets_holds_and_resets() {
        let mut n = GateNetwork::new();
        n.add_sr_latch("s", "r", "l").unwrap();
        // Set.
        let e1 = n.evaluate(&[("s", true), ("r", false)]).unwrap();
        assert!(e1.value("l_q").unwrap());
        assert!(!e1.value("l_qbar").unwrap());
        // Hold (seeded from the set state).
        let e2 = n
            .evaluate_seeded(&[("s", false), ("r", false)], Some(&e1))
            .unwrap();
        assert!(e2.value("l_q").unwrap(), "state held");
        // Reset.
        let e3 = n
            .evaluate_seeded(&[("s", false), ("r", true)], Some(&e2))
            .unwrap();
        assert!(!e3.value("l_q").unwrap());
        // Hold the reset state.
        let e4 = n
            .evaluate_seeded(&[("s", false), ("r", false)], Some(&e3))
            .unwrap();
        assert!(!e4.value("l_q").unwrap());
    }

    #[test]
    fn sr_latch_metastable_from_power_on_is_reported() {
        let mut n = GateNetwork::new();
        n.add_sr_latch("s", "r", "l").unwrap();
        // Both inactive from the symmetric all-low state: the loop
        // oscillates and the simulator must say so rather than settle.
        assert!(n.evaluate(&[("s", false), ("r", false)]).is_err());
    }

    #[test]
    fn d_latch_is_transparent_then_holds() {
        let mut n = GateNetwork::new();
        n.add_d_latch("d", "en", "dl").unwrap();
        // Transparent: q follows d while en = 1.
        let e1 = n.evaluate(&[("d", true), ("en", true)]).unwrap();
        assert!(e1.value("dl_q").unwrap());
        let e2 = n
            .evaluate_seeded(&[("d", false), ("en", true)], Some(&e1))
            .unwrap();
        assert!(!e2.value("dl_q").unwrap(), "follows d");
        // Opaque: q ignores d while en = 0.
        let e3 = n
            .evaluate_seeded(&[("d", true), ("en", false)], Some(&e2))
            .unwrap();
        assert!(!e3.value("dl_q").unwrap(), "holds");
        let e4 = n
            .evaluate_seeded(&[("d", false), ("en", false)], Some(&e3))
            .unwrap();
        assert!(!e4.value("dl_q").unwrap());
    }

    #[test]
    fn latch_pipeline_shifts_a_bit() {
        // Two D latches with complementary enables: a master-slave
        // flip-flop shifting one bit per full clock cycle.
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Inv, &["clk"], "nclk").unwrap();
        n.add_d_latch("d", "clk", "master").unwrap();
        n.add_d_latch("master_q", "nclk", "slave").unwrap();
        // Declare the slave's reset state (q = 0); the opaque latch
        // would otherwise be metastable at power-on.
        let reset = Evaluation::initial_state([
            ("slave_q".to_owned(), false),
            ("slave_qbar".to_owned(), true),
        ]);
        // clk high: master samples d = 1; slave holds its reset 0.
        let e1 = n
            .evaluate_seeded(&[("d", true), ("clk", true)], Some(&reset))
            .unwrap();
        assert!(e1.value("master_q").unwrap());
        // clk low: slave copies the master's 1.
        let e2 = n
            .evaluate_seeded(&[("d", false), ("clk", false)], Some(&e1))
            .unwrap();
        assert!(e2.value("slave_q").unwrap(), "bit moved to the slave");
        // Next high phase: master samples the new 0, slave keeps 1.
        let e3 = n
            .evaluate_seeded(&[("d", false), ("clk", true)], Some(&e2))
            .unwrap();
        assert!(!e3.value("master_q").unwrap());
        assert!(e3.value("slave_q").unwrap());
    }

    #[test]
    fn undriven_inputs_default_low() {
        let mut n = GateNetwork::new();
        n.add_gate(GateKind::Nor2, &["a", "b"], "y").unwrap();
        let e = n.evaluate(&[]).unwrap();
        assert!(e.value("y").unwrap());
    }
}

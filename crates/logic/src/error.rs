//! Error type for circuit-level logic analysis.

use carbon_spice::SpiceError;

/// Errors from building or analyzing logic circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicError {
    /// The underlying circuit simulation failed.
    Simulation(SpiceError),
    /// A requested figure of merit does not exist for this circuit
    /// (e.g. unity-gain points of a sub-unity-gain inverter).
    MissingFeature {
        /// What was requested.
        feature: &'static str,
        /// Why it is absent.
        reason: String,
    },
    /// Invalid construction parameter.
    InvalidParameter {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Simulation(e) => write!(f, "circuit simulation failed: {e}"),
            Self::MissingFeature { feature, reason } => {
                write!(f, "{feature} not present: {reason}")
            }
            Self::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for LogicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for LogicError {
    fn from(e: SpiceError) -> Self {
        Self::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = LogicError::from(SpiceError::UnknownNode { name: "x".into() });
        assert!(e.to_string().contains("simulation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let m = LogicError::MissingFeature {
            feature: "noise margin",
            reason: "gain below unity".into(),
        };
        assert!(m.to_string().contains("noise margin"));
    }
}

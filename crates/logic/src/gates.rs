//! Static CMOS gates (NAND2/NOR2) built from compact models and
//! verified at the circuit level.
//!
//! The §V computers are built from exactly these gates; this module
//! checks, device model in hand, that a technology's gates actually
//! produce restored logic levels — which the non-saturating GNR devices
//! of Fig. 2 do not.

use std::sync::Arc;

use carbon_devices::Fet;
use carbon_spice::Circuit;
use carbon_units::Voltage;

use crate::error::LogicError;

/// Two-input static CMOS gate topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateTopology {
    /// Series pull-down, parallel pull-up.
    Nand2,
    /// Parallel pull-down, series pull-up.
    Nor2,
}

impl GateTopology {
    /// The Boolean function of the gate.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            Self::Nand2 => !(a && b),
            Self::Nor2 => !(a || b),
        }
    }
}

/// One row of a measured truth table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthRow {
    /// Input A level.
    pub a: bool,
    /// Input B level.
    pub b: bool,
    /// Measured output voltage, V.
    pub vout: f64,
    /// Whether the output is a valid logic level (within 15 % of the
    /// correct rail).
    pub valid: bool,
}

/// A two-input static gate instance.
pub struct StaticGate {
    topology: GateTopology,
    nfet: Arc<dyn Fet>,
    pfet: Arc<dyn Fet>,
    vdd: f64,
}

impl std::fmt::Debug for StaticGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticGate")
            .field("topology", &self.topology)
            .field("vdd", &self.vdd)
            .finish()
    }
}

impl StaticGate {
    /// Builds a gate from an n/p device pair.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for a non-positive
    /// supply or wrong polarities.
    pub fn new(
        topology: GateTopology,
        nfet: Arc<dyn Fet>,
        pfet: Arc<dyn Fet>,
        vdd: Voltage,
    ) -> Result<Self, LogicError> {
        if vdd.volts() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "vdd must be positive".into(),
            });
        }
        if nfet.polarity() != carbon_devices::Polarity::NType
            || pfet.polarity() != carbon_devices::Polarity::PType
        {
            return Err(LogicError::InvalidParameter {
                reason: "gate needs an n-type pull-down and p-type pull-up".into(),
            });
        }
        Ok(Self {
            topology,
            nfet,
            pfet,
            vdd: vdd.volts(),
        })
    }

    fn circuit(&self, a: f64, b: f64) -> Result<Circuit, LogicError> {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd", "vdd", "0", self.vdd);
        ckt.voltage_source("va", "a", "0", a);
        ckt.voltage_source("vb", "b", "0", b);
        let n = |c: &mut Circuit, name: &str, d: &str, g: &str, s: &str| {
            c.fet(name, d, g, s, Arc::new(FetRef(self.nfet.clone())))
        };
        let p = |c: &mut Circuit, name: &str, d: &str, g: &str, s: &str| {
            c.fet(name, d, g, s, Arc::new(FetRef(self.pfet.clone())))
        };
        match self.topology {
            GateTopology::Nand2 => {
                // Pull-up: two pFETs in parallel vdd→out.
                p(&mut ckt, "mpa", "out", "a", "vdd")?;
                p(&mut ckt, "mpb", "out", "b", "vdd")?;
                // Pull-down: series nFETs out→mid→gnd.
                n(&mut ckt, "mna", "out", "a", "mid")?;
                n(&mut ckt, "mnb", "mid", "b", "0")?;
            }
            GateTopology::Nor2 => {
                // Pull-up: series pFETs vdd→mid→out.
                p(&mut ckt, "mpa", "mid", "a", "vdd")?;
                p(&mut ckt, "mpb", "out", "b", "mid")?;
                // Pull-down: parallel nFETs.
                n(&mut ckt, "mna", "out", "a", "0")?;
                n(&mut ckt, "mnb", "out", "b", "0")?;
            }
        }
        Ok(ckt)
    }

    /// Measures all four input combinations at DC.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn truth_table(&self) -> Result<[TruthRow; 4], LogicError> {
        let mut rows = [TruthRow {
            a: false,
            b: false,
            vout: 0.0,
            valid: false,
        }; 4];
        for (k, (a, b)) in [(false, false), (false, true), (true, false), (true, true)]
            .into_iter()
            .enumerate()
        {
            let va = if a { self.vdd } else { 0.0 };
            let vb = if b { self.vdd } else { 0.0 };
            let op = self.circuit(va, vb)?.op()?;
            let vout = op.voltage("out")?;
            let expect_high = self.topology.eval(a, b);
            let valid = if expect_high {
                vout > 0.85 * self.vdd
            } else {
                vout < 0.15 * self.vdd
            };
            rows[k] = TruthRow { a, b, vout, valid };
        }
        Ok(rows)
    }

    /// `true` when every row of the truth table produces a valid,
    /// restored logic level.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn is_functional(&self) -> Result<bool, LogicError> {
        Ok(self.truth_table()?.iter().all(|r| r.valid))
    }
}

struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_devices::{AlphaPowerFet, LinearGnrFet};

    fn devices() -> (Arc<dyn Fet>, Arc<dyn Fet>) {
        (
            Arc::new(AlphaPowerFet::fig2_nfet()),
            Arc::new(AlphaPowerFet::fig2_pfet()),
        )
    }

    #[test]
    fn nand2_truth_table() {
        let (n, p) = devices();
        let gate = StaticGate::new(GateTopology::Nand2, n, p, Voltage::from_volts(1.0)).unwrap();
        let rows = gate.truth_table().unwrap();
        for r in rows {
            let expect = !(r.a && r.b);
            assert!(r.valid, "({}, {}) → {:.3} V", r.a, r.b, r.vout);
            assert_eq!(r.vout > 0.5, expect, "logic value at ({}, {})", r.a, r.b);
        }
        assert!(gate.is_functional().unwrap());
    }

    #[test]
    fn nor2_truth_table() {
        let (n, p) = devices();
        let gate = StaticGate::new(GateTopology::Nor2, n, p, Voltage::from_volts(1.0)).unwrap();
        let rows = gate.truth_table().unwrap();
        for r in rows {
            let expect = !(r.a || r.b);
            assert!(r.valid, "({}, {}) → {:.3} V", r.a, r.b, r.vout);
            assert_eq!(r.vout > 0.5, expect);
        }
    }

    #[test]
    fn non_saturating_devices_fail_level_restoration() {
        let gate = StaticGate::new(
            GateTopology::Nand2,
            Arc::new(LinearGnrFet::fig2_nfet()),
            Arc::new(LinearGnrFet::fig2_pfet()),
            Voltage::from_volts(1.0),
        )
        .unwrap();
        assert!(
            !gate.is_functional().unwrap(),
            "real-GNR devices cannot restore logic levels"
        );
    }

    #[test]
    fn topology_eval() {
        assert!(GateTopology::Nand2.eval(false, true));
        assert!(!GateTopology::Nand2.eval(true, true));
        assert!(GateTopology::Nor2.eval(false, false));
        assert!(!GateTopology::Nor2.eval(true, false));
    }

    #[test]
    fn construction_validation() {
        let (n, p) = devices();
        assert!(StaticGate::new(GateTopology::Nand2, n.clone(), p.clone(), Voltage::ZERO).is_err());
        assert!(
            StaticGate::new(GateTopology::Nand2, p.clone(), p, Voltage::from_volts(1.0)).is_err()
        );
        let _ = n;
    }
}

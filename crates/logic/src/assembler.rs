//! A tiny assembler for SUBNEG programs.
//!
//! The Shulaker computer was programmed by hand-placing instruction
//! words; this module gives the [`SubnegComputer`](crate::SubnegComputer)
//! a textual format so programs read like programs:
//!
//! ```text
//! ; count `counter` down past zero
//! .data one     1
//! .data counter 7
//! .data zero    0
//! .data always  -1
//!
//! loop: one  counter done    ; counter -= 1; if negative goto done
//!       zero always  loop    ; unconditional jump (always stays < 0)
//! done:
//! ```
//!
//! * `.data <name> <value>` declares one memory cell (in order);
//! * an instruction line is `a b jump` — three operands, each a data
//!   name (for `a`/`b`) or an instruction label (for `jump`);
//! * `name:` prefixes label an instruction (or, on a line of its own,
//!   the address after the last instruction — the halt idiom);
//! * `;` starts a comment.

use std::collections::HashMap;

use crate::computer::Instruction;

/// Error from assembling a SUBNEG source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for AssembleError {}

/// An assembled program: instructions, initial memory, and the name
/// table for reading results back.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The instruction stream.
    pub instructions: Vec<Instruction>,
    /// Initial memory image.
    pub memory: Vec<i64>,
    data_names: HashMap<String, usize>,
}

impl Program {
    /// The memory address of a `.data` cell.
    ///
    /// # Errors
    ///
    /// Returns an error naming the unknown cell.
    pub fn address_of(&self, name: &str) -> Result<usize, AssembleError> {
        self.data_names
            .get(name)
            .copied()
            .ok_or_else(|| AssembleError {
                line: 0,
                reason: format!("unknown data cell '{name}'"),
            })
    }
}

/// Assembles SUBNEG source text.
///
/// # Errors
///
/// Returns [`AssembleError`] with the offending line for syntax errors,
/// duplicate or undefined names, and malformed values.
pub fn assemble(source: &str) -> Result<Program, AssembleError> {
    struct RawInstr {
        line: usize,
        a: String,
        b: String,
        jump: String,
    }
    let mut data_names: HashMap<String, usize> = HashMap::new();
    let mut memory = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut raw = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| AssembleError {
            line: line_no,
            reason,
        };
        if let Some(rest) = line.strip_prefix(".data") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 2 {
                return Err(err(".data needs: name value".into()));
            }
            let name = parts[0].to_owned();
            if data_names.contains_key(&name) {
                return Err(err(format!("duplicate data cell '{name}'")));
            }
            let value: i64 = parts[1]
                .parse()
                .map_err(|_| err(format!("bad integer '{}'", parts[1])))?;
            data_names.insert(name, memory.len());
            memory.push(value);
            continue;
        }
        // Optional leading label.
        let mut body = line;
        if let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(format!("bad label '{label}'")));
            }
            if labels.contains_key(label) {
                return Err(err(format!("duplicate label '{label}'")));
            }
            labels.insert(label.to_owned(), raw.len());
            body = rest[1..].trim();
        }
        if body.is_empty() {
            continue; // bare label line
        }
        let ops: Vec<&str> = body.split_whitespace().collect();
        if ops.len() != 3 {
            return Err(err(format!(
                "instruction needs 3 operands (a b jump), got {}",
                ops.len()
            )));
        }
        raw.push(RawInstr {
            line: line_no,
            a: ops[0].to_owned(),
            b: ops[1].to_owned(),
            jump: ops[2].to_owned(),
        });
    }

    let mut instructions = Vec::with_capacity(raw.len());
    for r in &raw {
        let err = |reason: String| AssembleError {
            line: r.line,
            reason,
        };
        let resolve_data = |name: &str| {
            data_names
                .get(name)
                .copied()
                .ok_or_else(|| err(format!("undefined data cell '{name}'")))
        };
        let jump = labels
            .get(&r.jump)
            .copied()
            .ok_or_else(|| err(format!("undefined label '{}'", r.jump)))?;
        instructions.push(Instruction {
            a: resolve_data(&r.a)?,
            b: resolve_data(&r.b)?,
            jump,
        });
    }
    if instructions.is_empty() {
        return Err(AssembleError {
            line: 0,
            reason: "program has no instructions".into(),
        });
    }
    Ok(Program {
        instructions,
        memory,
        data_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computer::{Halt, SubnegComputer};
    use carbon_units::Time;

    const COUNTING: &str = "
        ; count down past zero
        .data one     1
        .data counter 7
        .data zero    0
        .data always  -1

        loop: one  counter done
              zero always  loop
        done:
    ";

    #[test]
    fn assembles_and_runs_counting() {
        let prog = assemble(COUNTING).unwrap();
        assert_eq!(prog.instructions.len(), 2);
        assert_eq!(prog.memory, vec![1, 7, 0, -1]);
        let counter = prog.address_of("counter").unwrap();
        let mut cpu = SubnegComputer::new(
            prog.instructions,
            prog.memory,
            8,
            Time::from_picoseconds(20.0),
        )
        .unwrap();
        let (halt, stats) = cpu.run(1000).unwrap();
        assert_eq!(halt, Halt::ProgramEnd);
        assert_eq!(cpu.memory()[counter], -1);
        assert_eq!(stats.instructions, 2 * 7 + 1);
    }

    #[test]
    fn trailing_label_is_the_halt_address() {
        let prog = assemble(COUNTING).unwrap();
        // "done" resolves past the last instruction.
        assert_eq!(prog.instructions[0].jump, 2);
    }

    #[test]
    fn error_reporting() {
        let e = assemble(".data x").unwrap_err();
        assert!(e.reason.contains("name value"), "{e}");
        let e = assemble(".data x 1\n.data x 2").unwrap_err();
        assert!(e.reason.contains("duplicate data"), "{e}");
        let e = assemble(".data x 1\nx x nowhere").unwrap_err();
        assert!(e.reason.contains("undefined label"), "{e}");
        let e = assemble(".data x 1\nstop: y x stop").unwrap_err();
        assert!(e.reason.contains("undefined data cell 'y'"), "{e}");
        let e = assemble(".data x 1\nl: x x").unwrap_err();
        assert!(e.reason.contains("3 operands"), "{e}");
        let e = assemble(".data x 1").unwrap_err();
        assert!(e.reason.contains("no instructions"), "{e}");
        let e = assemble("lab el: x x x").unwrap_err();
        assert!(e.reason.contains("bad label"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble("; header\n\n.data a 1\n.data b 2 ; trailing\nl: a b l\n").unwrap();
        assert_eq!(prog.instructions.len(), 1);
    }

    #[test]
    fn address_lookup() {
        let prog = assemble(COUNTING).unwrap();
        assert_eq!(prog.address_of("one").unwrap(), 0);
        assert!(prog.address_of("ghost").is_err());
    }
}

//! A SUBNEG one-instruction computer with a bit-serial datapath built on
//! the gate-level simulator — the workspace's stand-in for the Shulaker
//! carbon-nanotube computer (paper §V, reference \[20\]).
//!
//! The CNT computer of Shulaker et al. executed a single instruction
//! (subtract-and-branch-if-negative) over a one-bit datapath, cycling
//! words through bit-serially. [`SubnegComputer`] does the same: each
//! word subtraction is performed bit by bit through the
//! [`GateNetwork`] full subtractor, the
//! borrow chain deciding the branch. Instruction timing is derived from
//! the gate depth and an externally supplied stage delay (measured from
//! a SPICE ring oscillator in `carbon-core`), so the reported runtime is
//! grounded in the analog layer.

use carbon_units::Time;

use crate::digital::GateNetwork;
use crate::error::LogicError;

/// One SUBNEG instruction: `mem[b] ← mem[b] − mem[a]`; branch to `jump`
/// if the result is negative, else fall through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Address of the subtrahend.
    pub a: usize,
    /// Address of the minuend / destination.
    pub b: usize,
    /// Branch target on negative result.
    pub jump: usize,
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The program counter ran past the end of the program.
    ProgramEnd,
    /// An instruction addressed memory out of range.
    BadAddress {
        /// The offending program counter.
        pc: usize,
    },
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
}

/// Execution statistics, with timing grounded in the analog stage delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Total gate evaluations in the bit-serial ALU.
    pub gate_evaluations: u64,
    /// Accumulated critical-path depth, in inverter-stage delays.
    pub depth_stages: u64,
    /// Wall-clock estimate: `depth_stages × stage_delay`.
    pub execution_time: Time,
}

/// The one-instruction computer.
///
/// # Examples
///
/// Count down from 3 by repeated subtraction:
///
/// ```
/// use carbon_logic::computer::{counting_program, SubnegComputer};
/// use carbon_units::Time;
///
/// # fn main() -> Result<(), carbon_logic::LogicError> {
/// let (program, memory) = counting_program(3);
/// let mut cpu = SubnegComputer::new(program, memory, 8, Time::from_picoseconds(20.0))?;
/// let (_halt, stats) = cpu.run(1000)?;
/// assert_eq!(cpu.memory()[1], -1); // looped until negative
/// assert!(stats.execution_time.seconds() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SubnegComputer {
    program: Vec<Instruction>,
    memory: Vec<i64>,
    word_bits: u32,
    pc: usize,
    stage_delay: Time,
    alu: GateNetwork,
    stats_depth: u64,
    stats_evals: u64,
}

impl SubnegComputer {
    /// Creates a computer with a program, initial memory image, word
    /// width in bits (2..=32), and the per-stage gate delay used for
    /// timing.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for empty programs or
    /// unsupported word widths.
    pub fn new(
        program: Vec<Instruction>,
        memory: Vec<i64>,
        word_bits: u32,
        stage_delay: Time,
    ) -> Result<Self, LogicError> {
        if program.is_empty() {
            return Err(LogicError::InvalidParameter {
                reason: "program must contain at least one instruction".into(),
            });
        }
        if !(2..=32).contains(&word_bits) {
            return Err(LogicError::InvalidParameter {
                reason: format!("word width must be 2..=32 bits, got {word_bits}"),
            });
        }
        if stage_delay.seconds() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "stage delay must be positive".into(),
            });
        }
        let mut alu = GateNetwork::new();
        alu.add_full_subtractor("a", "b", "bin", "fs")?;
        Ok(Self {
            program,
            memory,
            word_bits,
            pc: 0,
            stage_delay,
            alu,
            stats_depth: 0,
            stats_evals: 0,
        })
    }

    /// The memory image.
    pub fn memory(&self) -> &[i64] {
        &self.memory
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Bit-serial two's-complement subtraction `y − x` through the
    /// gate-level full subtractor; returns the wrapped result and the
    /// final borrow (set iff the true result is negative, given both
    /// operands fit the word).
    fn alu_subtract(&mut self, y: i64, x: i64) -> Result<(i64, bool), LogicError> {
        let mask: i64 = if self.word_bits == 64 {
            -1
        } else {
            (1 << self.word_bits) - 1
        };
        let (yu, xu) = (y & mask, x & mask);
        let mut borrow = false;
        let mut out: i64 = 0;
        for bit in 0..self.word_bits {
            let a = (yu >> bit) & 1 == 1;
            let b = (xu >> bit) & 1 == 1;
            let e = self.alu.evaluate(&[("a", a), ("b", b), ("bin", borrow)])?;
            if e.value("fs_diff")? {
                out |= 1 << bit;
            }
            borrow = e.value("fs_bout")?;
            self.stats_depth += e.depth_stages;
            self.stats_evals += e.gate_evaluations;
        }
        // Sign-extend the wrapped result.
        let sign_bit = 1_i64 << (self.word_bits - 1);
        let signed = if out & sign_bit != 0 {
            out | !mask
        } else {
            out
        };
        Ok((signed, borrow))
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates gate-network failures (none occur for the built-in
    /// ALU).
    pub fn step(&mut self) -> Result<Option<Halt>, LogicError> {
        let Some(&instr) = self.program.get(self.pc) else {
            return Ok(Some(Halt::ProgramEnd));
        };
        if instr.a >= self.memory.len() || instr.b >= self.memory.len() {
            return Ok(Some(Halt::BadAddress { pc: self.pc }));
        }
        let (result, _borrow) = self.alu_subtract(self.memory[instr.b], self.memory[instr.a])?;
        self.memory[instr.b] = result;
        if result < 0 {
            self.pc = instr.jump;
        } else {
            self.pc += 1;
        }
        Ok(None)
    }

    /// Runs until halt or `max_steps`, returning the halt reason and
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates gate-network failures.
    pub fn run(&mut self, max_steps: u64) -> Result<(Halt, RunStats), LogicError> {
        let mut instructions = 0;
        let halt = loop {
            if instructions >= max_steps {
                break Halt::StepLimit;
            }
            match self.step()? {
                Some(h) => break h,
                None => instructions += 1,
            }
        };
        Ok((
            halt,
            RunStats {
                instructions,
                gate_evaluations: self.stats_evals,
                depth_stages: self.stats_depth,
                execution_time: self.stage_delay * self.stats_depth as f64,
            },
        ))
    }
}

/// The counting demo the CNT computer famously ran: counts `n` down
/// past zero (leaving −1 in `mem[1]`), returning the program and initial
/// memory.
///
/// Memory layout: `[const 1, counter, const 0, const −1]`. Instruction 0
/// decrements the counter and exits (jumps past the program) once it
/// goes negative; instruction 1 is the SUBNEG unconditional-jump idiom
/// (subtracting zero from an always-negative cell) back to instruction 0.
pub fn counting_program(n: i64) -> (Vec<Instruction>, Vec<i64>) {
    (
        vec![
            Instruction {
                a: 0,
                b: 1,
                jump: 2,
            },
            Instruction {
                a: 2,
                b: 3,
                jump: 0,
            },
        ],
        vec![1, n, 0, -1],
    )
}

/// A two-value sorting (max/min) program: given `mem = [x, y, 0, 0]`,
/// leaves `max(x, y)` in `mem[3]` and `min(x, y)` in `mem[2]`.
///
/// Implemented with the classic SUBNEG idioms (copy via double
/// subtraction, comparison via subtraction sign).
pub fn sorting_program(x: i64, y: i64) -> (Vec<Instruction>, Vec<i64>) {
    // Memory layout: 0: x, 1: y, 2: out_min, 3: out_max, 4: scratch.
    // The program compares x and y by computing scratch = x; scratch -= y.
    let program = vec![
        // scratch = -x  (scratch starts 0: scratch -= x)
        Instruction {
            a: 0,
            b: 4,
            jump: 1,
        },
        // scratch = y − x : scratch += y  ⇒ scratch = -(x) ... SUBNEG only
        // subtracts, so compute scratch2 = −y, then scratch −= scratch2.
        Instruction {
            a: 1,
            b: 5,
            jump: 2,
        },
        Instruction {
            a: 5,
            b: 4,
            jump: 6,
        }, // scratch = y − x; if negative (x > y) jump 6
        // x ≤ y: min = x, max = y (copy via double subtraction)
        Instruction {
            a: 0,
            b: 6,
            jump: 4,
        }, // t = −x
        Instruction {
            a: 6,
            b: 2,
            jump: 5,
        }, // min = x
        Instruction {
            a: 1,
            b: 7,
            jump: 9,
        }, // t2 = −y, then fall/jump to 9
        // x > y: min = y, max = x
        Instruction {
            a: 1,
            b: 6,
            jump: 7,
        }, // t = −y
        Instruction {
            a: 6,
            b: 2,
            jump: 8,
        }, // min = y
        Instruction {
            a: 0,
            b: 7,
            jump: 9,
        }, // t2 = −x
        Instruction {
            a: 7,
            b: 3,
            jump: 10,
        }, // max = (x or y)
    ];
    (program, vec![x, y, 0, 0, 0, 0, 0, 0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay() -> Time {
        Time::from_picoseconds(20.0)
    }

    #[test]
    fn counting_counts_down() {
        let (prog, mem) = counting_program(5);
        let mut cpu = SubnegComputer::new(prog, mem, 8, delay()).unwrap();
        let (halt, stats) = cpu.run(100).unwrap();
        assert_eq!(halt, Halt::ProgramEnd);
        assert_eq!(cpu.memory()[1], -1);
        // 5 non-negative decrements, each followed by the jump idiom,
        // plus the final decrement that exits: 2·5 + 1 = 11.
        assert_eq!(stats.instructions, 11);
    }

    #[test]
    fn sorting_orders_both_ways() {
        for (x, y) in [(3, 9), (9, 3), (5, 5), (0, 7)] {
            let (prog, mem) = sorting_program(x, y);
            let mut cpu = SubnegComputer::new(prog, mem, 8, delay()).unwrap();
            let (halt, _) = cpu.run(200).unwrap();
            assert_eq!(halt, Halt::ProgramEnd, "({x},{y})");
            assert_eq!(cpu.memory()[2], x.min(y), "min of ({x},{y})");
            assert_eq!(cpu.memory()[3], x.max(y), "max of ({x},{y})");
        }
    }

    #[test]
    fn alu_matches_integer_subtraction() {
        let (prog, mem) = counting_program(0);
        let mut cpu = SubnegComputer::new(prog, mem, 8, delay()).unwrap();
        for (y, x) in [(5, 3), (3, 5), (-4, 2), (7, -2), (0, 0), (-8, -8)] {
            let (r, _) = cpu.alu_subtract(y, x).unwrap();
            assert_eq!(r, y - x, "{y} − {x}");
        }
    }

    #[test]
    fn alu_wraps_at_word_width() {
        let (prog, mem) = counting_program(0);
        let mut cpu = SubnegComputer::new(prog, mem, 4, delay()).unwrap();
        // 4-bit: 7 − (−7) = 14 → wraps to −2.
        let (r, _) = cpu.alu_subtract(7, -7).unwrap();
        assert_eq!(r, -2);
    }

    #[test]
    fn timing_grounded_in_stage_delay() {
        let (prog, mem) = counting_program(3);
        let mut cpu = SubnegComputer::new(prog, mem, 8, Time::from_picoseconds(50.0)).unwrap();
        let (_, stats) = cpu.run(100).unwrap();
        assert!(stats.depth_stages > 0);
        let expect = 50e-12 * stats.depth_stages as f64;
        assert!((stats.execution_time.seconds() - expect).abs() < 1e-18);
        assert!(stats.gate_evaluations > stats.instructions * 8);
    }

    #[test]
    fn bad_address_halts() {
        let prog = vec![Instruction {
            a: 9,
            b: 0,
            jump: 0,
        }];
        let mut cpu = SubnegComputer::new(prog, vec![0], 8, delay()).unwrap();
        let (halt, _) = cpu.run(10).unwrap();
        assert_eq!(halt, Halt::BadAddress { pc: 0 });
    }

    #[test]
    fn step_limit_detects_infinite_loop() {
        // mem[a] = 0 never drives mem[b] negative when b starts at 0...
        // actually 0 − 0 = 0 forever with jump = self: infinite loop.
        let prog = vec![Instruction {
            a: 0,
            b: 0,
            jump: 0,
        }];
        let mut cpu = SubnegComputer::new(prog, vec![0], 8, delay()).unwrap();
        let (halt, stats) = cpu.run(50).unwrap();
        // 0 − 0 = 0 → not negative → pc += 1 → program end, actually.
        assert!(matches!(halt, Halt::ProgramEnd | Halt::StepLimit));
        assert!(stats.instructions <= 50);
    }

    #[test]
    fn construction_validation() {
        assert!(SubnegComputer::new(vec![], vec![0], 8, delay()).is_err());
        let prog = vec![Instruction {
            a: 0,
            b: 0,
            jump: 0,
        }];
        assert!(SubnegComputer::new(prog.clone(), vec![0], 1, delay()).is_err());
        assert!(SubnegComputer::new(prog.clone(), vec![0], 64, delay()).is_err());
        assert!(SubnegComputer::new(prog, vec![0], 8, Time::from_seconds(0.0)).is_err());
    }
}

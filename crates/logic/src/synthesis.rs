//! Gate-to-transistor synthesis: compile a [`GateNetwork`] into a
//! transistor-level [`Circuit`] and cross-verify the two abstraction
//! levels.
//!
//! This closes the loop the §V computers rely on: the digital simulator
//! assumes gates restore levels; this module *checks* that assumption by
//! building every gate out of the actual device compact models (static
//! CMOS topologies) and solving the whole network analog-style. A
//! technology whose devices don't saturate — Fig. 2's lesson — fails
//! the cross-verification here, at netlist scale.

use std::sync::Arc;

use carbon_devices::Fet;
use carbon_spice::Circuit;
use carbon_units::Voltage;

use crate::digital::{GateKind, GateNetwork};
use crate::error::LogicError;

/// A gate-network-to-transistor compiler for one device pair.
pub struct Synthesizer {
    nfet: Arc<dyn Fet>,
    pfet: Arc<dyn Fet>,
    vdd: f64,
}

impl std::fmt::Debug for Synthesizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synthesizer")
            .field("vdd", &self.vdd)
            .finish()
    }
}

/// Result of an analog-vs-digital cross-verification.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Nets compared: `(name, digital value, analog voltage, agree)`.
    pub nets: Vec<(String, bool, f64, bool)>,
    /// Number of transistors in the synthesized netlist.
    pub transistor_count: usize,
}

impl CrossCheck {
    /// `true` when every compared net agrees between the levels.
    pub fn all_agree(&self) -> bool {
        self.nets.iter().all(|(_, _, _, ok)| *ok)
    }
}

impl Synthesizer {
    /// Creates a synthesizer over an n/p device pair and supply.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for a non-positive
    /// supply or wrong polarities.
    pub fn new(nfet: Arc<dyn Fet>, pfet: Arc<dyn Fet>, vdd: Voltage) -> Result<Self, LogicError> {
        if vdd.volts() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "vdd must be positive".into(),
            });
        }
        if nfet.polarity() != carbon_devices::Polarity::NType
            || pfet.polarity() != carbon_devices::Polarity::PType
        {
            return Err(LogicError::InvalidParameter {
                reason: "synthesis needs an n-type pull-down and p-type pull-up".into(),
            });
        }
        Ok(Self {
            nfet,
            pfet,
            vdd: vdd.volts(),
        })
    }

    /// Compiles the network with the given primary inputs into a
    /// transistor-level circuit (returns the circuit and its transistor
    /// count).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] if the network contains
    /// a [`GateKind::DLatch`] (no static-CMOS mapping here) or an input
    /// drives a gate output.
    pub fn compile(
        &self,
        network: &GateNetwork,
        inputs: &[(&str, bool)],
    ) -> Result<(Circuit, usize), LogicError> {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd!", "vdd!", "0", self.vdd);
        for (name, level) in inputs {
            if network.is_driven(name) {
                return Err(LogicError::InvalidParameter {
                    reason: format!("net '{name}' is gate-driven, cannot force"),
                });
            }
            let v = if *level { self.vdd } else { 0.0 };
            ckt.voltage_source(&format!("vin_{name}"), name, "0", v);
        }
        let mut mosid = 0usize;
        for (k, (kind, gate_inputs, output)) in network.gates_iter().enumerate() {
            self.emit_gate(&mut ckt, kind, &gate_inputs, &output, k, &mut mosid)?;
        }
        Ok((ckt, mosid))
    }

    fn emit_gate(
        &self,
        ckt: &mut Circuit,
        kind: GateKind,
        inputs: &[String],
        output: &str,
        gate_idx: usize,
        mosid: &mut usize,
    ) -> Result<(), LogicError> {
        let nmos = |ckt: &mut Circuit, d: &str, g: &str, s: &str, id: &mut usize| {
            *id += 1;
            ckt.fet(
                &format!("mn{id}"),
                d,
                g,
                s,
                Arc::new(FetRef(self.nfet.clone())),
            )
        };
        let pmos = |ckt: &mut Circuit, d: &str, g: &str, s: &str, id: &mut usize| {
            *id += 1;
            ckt.fet(
                &format!("mp{id}"),
                d,
                g,
                s,
                Arc::new(FetRef(self.pfet.clone())),
            )
        };
        match kind {
            GateKind::Inv => {
                pmos(ckt, output, &inputs[0], "vdd!", mosid)?;
                nmos(ckt, output, &inputs[0], "0", mosid)?;
            }
            GateKind::Buf => {
                let mid = format!("buf{gate_idx}_m");
                pmos(ckt, &mid, &inputs[0], "vdd!", mosid)?;
                nmos(ckt, &mid, &inputs[0], "0", mosid)?;
                pmos(ckt, output, &mid, "vdd!", mosid)?;
                nmos(ckt, output, &mid, "0", mosid)?;
            }
            GateKind::Nand2 => {
                pmos(ckt, output, &inputs[0], "vdd!", mosid)?;
                pmos(ckt, output, &inputs[1], "vdd!", mosid)?;
                let mid = format!("nand{gate_idx}_m");
                nmos(ckt, output, &inputs[0], &mid, mosid)?;
                nmos(ckt, &mid, &inputs[1], "0", mosid)?;
            }
            GateKind::Nor2 => {
                let mid = format!("nor{gate_idx}_m");
                pmos(ckt, &mid, &inputs[0], "vdd!", mosid)?;
                pmos(ckt, output, &inputs[1], &mid, mosid)?;
                nmos(ckt, output, &inputs[0], "0", mosid)?;
                nmos(ckt, output, &inputs[1], "0", mosid)?;
            }
            GateKind::Xor2 => {
                // Four-NAND XOR.
                let n1 = format!("xor{gate_idx}_n1");
                let n2 = format!("xor{gate_idx}_n2");
                let n3 = format!("xor{gate_idx}_n3");
                for (a, b, out) in [
                    (inputs[0].as_str(), inputs[1].as_str(), n1.as_str()),
                    (inputs[0].as_str(), n1.as_str(), n2.as_str()),
                    (inputs[1].as_str(), n1.as_str(), n3.as_str()),
                    (n2.as_str(), n3.as_str(), output),
                ] {
                    pmos(ckt, out, a, "vdd!", mosid)?;
                    pmos(ckt, out, b, "vdd!", mosid)?;
                    let mid = format!("{out}_m");
                    nmos(ckt, out, a, &mid, mosid)?;
                    nmos(ckt, &mid, b, "0", mosid)?;
                }
            }
            GateKind::DLatch => {
                return Err(LogicError::InvalidParameter {
                    reason: "DLatch has no combinational static-CMOS mapping; synthesize \
                             flip-flop-free networks only"
                        .into(),
                });
            }
        }
        Ok(())
    }

    /// Compiles the network, solves its DC operating point, and
    /// compares every gate output with the digital simulation.
    ///
    /// # Errors
    ///
    /// Propagates compilation, digital-evaluation, and circuit-solver
    /// failures.
    pub fn cross_check(
        &self,
        network: &GateNetwork,
        inputs: &[(&str, bool)],
    ) -> Result<CrossCheck, LogicError> {
        let digital = network.evaluate(inputs)?;
        let (ckt, transistor_count) = self.compile(network, inputs)?;
        let op = ckt.op()?;
        let mut nets = Vec::new();
        for (_, _, output) in network.gates_iter() {
            let expect = digital.value(&output)?;
            let v = op.voltage(&output)?;
            let agree = if expect {
                v > 0.85 * self.vdd
            } else {
                v < 0.15 * self.vdd
            };
            nets.push((output, expect, v, agree));
        }
        Ok(CrossCheck {
            nets,
            transistor_count,
        })
    }
}

struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_devices::{AlphaPowerFet, LinearGnrFet};

    fn synth() -> Synthesizer {
        Synthesizer::new(
            Arc::new(AlphaPowerFet::fig2_nfet()),
            Arc::new(AlphaPowerFet::fig2_pfet()),
            Voltage::from_volts(1.0),
        )
        .unwrap()
    }

    fn subtractor() -> GateNetwork {
        let mut n = GateNetwork::new();
        n.add_full_subtractor("a", "b", "bin", "fs").unwrap();
        n
    }

    #[test]
    fn full_subtractor_cross_checks_on_all_inputs() {
        let s = synth();
        let net = subtractor();
        for a in [false, true] {
            for b in [false, true] {
                for bin in [false, true] {
                    let check = s
                        .cross_check(&net, &[("a", a), ("b", b), ("bin", bin)])
                        .unwrap();
                    assert!(
                        check.all_agree(),
                        "({a}, {b}, {bin}): {:?}",
                        check
                            .nets
                            .iter()
                            .filter(|(_, _, _, ok)| !ok)
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn transistor_count_is_plausible() {
        let s = synth();
        let net = subtractor();
        let (_, count) = s
            .compile(&net, &[("a", true), ("b", false), ("bin", false)])
            .unwrap();
        // 2 XOR (16 each) + 2 INV (2 each) + 3 NAND (4 each) = 48.
        assert_eq!(count, 48);
    }

    #[test]
    fn non_saturating_devices_fail_the_cross_check() {
        let s = Synthesizer::new(
            Arc::new(LinearGnrFet::fig2_nfet()),
            Arc::new(LinearGnrFet::fig2_pfet()),
            Voltage::from_volts(1.0),
        )
        .unwrap();
        let mut net = GateNetwork::new();
        net.add_gate(GateKind::Nand2, &["a", "b"], "y").unwrap();
        net.add_gate(GateKind::Inv, &["y"], "z").unwrap();
        let check = s.cross_check(&net, &[("a", true), ("b", true)]).unwrap();
        assert!(
            !check.all_agree(),
            "real-GNR devices must fail level restoration: {:?}",
            check.nets
        );
    }

    #[test]
    fn latch_is_rejected() {
        let s = synth();
        let mut net = GateNetwork::new();
        net.add_d_latch("d", "en", "l").unwrap();
        assert!(s.compile(&net, &[("d", true), ("en", true)]).is_err());
    }

    #[test]
    fn forcing_a_driven_net_is_rejected() {
        let s = synth();
        let mut net = GateNetwork::new();
        net.add_gate(GateKind::Inv, &["a"], "y").unwrap();
        assert!(s.compile(&net, &[("y", true)]).is_err());
    }

    #[test]
    fn construction_validation() {
        let n = Arc::new(AlphaPowerFet::fig2_nfet());
        let p = Arc::new(AlphaPowerFet::fig2_pfet());
        assert!(Synthesizer::new(n.clone(), p.clone(), Voltage::ZERO).is_err());
        assert!(Synthesizer::new(p.clone(), p, Voltage::from_volts(1.0)).is_err());
        let _ = n;
    }
}

//! RF figures of merit: intrinsic voltage gain, cut-off frequency
//! `f_T`, and maximum oscillation frequency `f_max`.
//!
//! §II of the paper (leaning on Schwierz's graphene-transistor review)
//! explains why missing current saturation kills RF use: "short channel
//! GNR show no current saturation, which as a consequence, leads to very
//! low voltage gain in the FET and this only enables very low values of
//! the maximum frequency of oscillation (f_max)". This module computes
//! the standard small-signal quantities from any compact model:
//!
//! ```text
//! A_v   = g_m / g_ds
//! f_T   = g_m / (2π·(C_gs + C_gd))
//! f_max = f_T / (2·√(R_g·(g_ds + 2π·f_T·C_gd)))
//! ```
//!
//! and cross-checks the analytic gain against the AC engine of
//! `carbon-spice` on an actual common-source stage.

use std::sync::Arc;

use carbon_devices::Fet;
use carbon_spice::Circuit;
use carbon_units::{Capacitance, Resistance, Voltage};

use crate::error::LogicError;

/// A biased device with its parasitic environment.
pub struct RfStage {
    fet: Arc<dyn Fet>,
    vgs: f64,
    vds: f64,
    cgs: f64,
    cgd: f64,
    rg: f64,
}

impl std::fmt::Debug for RfStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RfStage")
            .field("vgs", &self.vgs)
            .field("vds", &self.vds)
            .field("cgs", &self.cgs)
            .field("cgd", &self.cgd)
            .field("rg", &self.rg)
            .finish()
    }
}

/// Small-signal figures of merit at one bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfFigures {
    /// Transconductance, S.
    pub gm: f64,
    /// Output conductance, S.
    pub gds: f64,
    /// Intrinsic voltage gain `g_m/g_ds`.
    pub voltage_gain: f64,
    /// Current-gain cut-off frequency, Hz.
    pub ft: f64,
    /// Maximum oscillation frequency, Hz.
    pub fmax: f64,
}

impl RfStage {
    /// Builds an RF stage.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for non-positive
    /// capacitances or gate resistance.
    pub fn new(
        fet: Arc<dyn Fet>,
        vgs: Voltage,
        vds: Voltage,
        cgs: Capacitance,
        cgd: Capacitance,
        rg: Resistance,
    ) -> Result<Self, LogicError> {
        if cgs.farads() <= 0.0 || cgd.farads() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "gate capacitances must be positive".into(),
            });
        }
        if rg.ohms() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "gate resistance must be positive".into(),
            });
        }
        Ok(Self {
            fet,
            vgs: vgs.volts(),
            vds: vds.volts(),
            cgs: cgs.farads(),
            cgd: cgd.farads(),
            rg: rg.ohms(),
        })
    }

    /// Computes the small-signal figures of merit at the bias point.
    pub fn figures(&self) -> RfFigures {
        let (gm, gds) = self.fet.gm_gds(self.vgs, self.vds);
        let gm = gm.abs();
        let gds = gds.abs().max(1e-15);
        let ft = gm / (2.0 * std::f64::consts::PI * (self.cgs + self.cgd));
        let fmax = ft
            / (2.0
                * (self.rg * (gds + 2.0 * std::f64::consts::PI * ft * self.cgd))
                    .max(1e-30)
                    .sqrt());
        RfFigures {
            gm,
            gds,
            voltage_gain: gm / gds,
            ft,
            fmax,
        }
    }

    /// Simulates the stage as a common-source amplifier with an ideal
    /// current-source load (realized as a large resistor `r_load`), at a
    /// low frequency, and returns the measured voltage gain magnitude —
    /// an end-to-end check of the analytic `A_v` against the AC engine.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn simulated_voltage_gain(&self, r_load: Resistance) -> Result<f64, LogicError> {
        let mut ckt = Circuit::new();
        // Bias the gate through the gate resistance and drive AC on top.
        ckt.voltage_source("vg", "gdrive", "0", self.vgs);
        ckt.resistor("rg", "gdrive", "g", self.rg)?;
        // Current-source load: a DC current source holds the drain at
        // the requested operating point (it is AC-quiet), while `r_load`
        // to ground sets the AC load line. This avoids the enormous
        // supply a resistive pull-up to V_DS + I·R_load would need.
        let id0 = self.fet.ids(self.vgs, self.vds);
        ckt.current_source("ibias", "d", "0", id0 + self.vds / r_load.ohms())?;
        ckt.resistor("rl", "d", "0", r_load.ohms())?;
        ckt.capacitor("cgs", "g", "0", self.cgs)?;
        ckt.capacitor("cgd", "g", "d", self.cgd)?;
        ckt.fet("m1", "d", "g", "0", Arc::new(FetRef(self.fet.clone())))?;
        let ac = ckt.ac_sweep("vg", &[1e3])?;
        Ok(ac.magnitude("d")?[0])
    }
}

struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_devices::{AlphaPowerFet, BallisticFet, LinearGnrFet};

    fn stage(fet: Arc<dyn Fet>, vgs: f64, vds: f64) -> RfStage {
        RfStage::new(
            fet,
            Voltage::from_volts(vgs),
            Voltage::from_volts(vds),
            Capacitance::from_attofarads(10.0),
            Capacitance::from_attofarads(5.0),
            Resistance::from_ohms(100.0),
        )
        .unwrap()
    }

    #[test]
    fn saturating_device_has_gain_ballistic_cnt() {
        let cnt = Arc::new(BallisticFet::cnt_fig1().unwrap());
        let fig = stage(cnt, 0.5, 0.4).figures();
        assert!(fig.voltage_gain > 5.0, "A_v = {}", fig.voltage_gain);
        assert!(
            fig.ft > 1e11,
            "f_T = {:.2e} (THz-class intrinsic device)",
            fig.ft
        );
        assert!(fig.fmax > 1e10, "f_max = {:.2e}", fig.fmax);
    }

    #[test]
    fn non_saturating_gnr_has_no_gain() {
        let gnr = Arc::new(LinearGnrFet::sub10nm_fig1());
        let fig = stage(gnr, 1.0, 0.5).figures();
        assert!(
            fig.voltage_gain < 2.0,
            "ohmic output swamps the gain: A_v = {}",
            fig.voltage_gain
        );
    }

    #[test]
    fn fmax_collapses_without_saturation() {
        let cnt = Arc::new(BallisticFet::cnt_fig1().unwrap());
        let gnr = Arc::new(LinearGnrFet::sub10nm_fig1());
        let f_cnt = stage(cnt, 0.5, 0.4).figures();
        let f_gnr = stage(gnr, 1.0, 0.5).figures();
        // Similar f_T class is possible, but f_max diverges — the §II
        // point that f_max, not f_T, is what saturation buys.
        assert!(
            f_cnt.fmax / f_gnr.fmax > 3.0,
            "f_max ratio {:.1}",
            f_cnt.fmax / f_gnr.fmax
        );
    }

    #[test]
    fn analytic_gain_matches_ac_simulation() {
        let fet = Arc::new(AlphaPowerFet::fig2_nfet());
        let s = stage(fet, 0.7, 0.8);
        let analytic = s.figures();
        // With a load ≫ 1/gds the simulated gain approaches gm/gds.
        let simulated = s
            .simulated_voltage_gain(Resistance::from_ohms(1e9))
            .unwrap();
        let ratio = simulated / analytic.voltage_gain;
        assert!(
            (0.7..1.3).contains(&ratio),
            "simulated {simulated:.1} vs analytic {:.1}",
            analytic.voltage_gain
        );
    }

    #[test]
    fn finite_load_divides_gain() {
        let fet = Arc::new(AlphaPowerFet::fig2_nfet());
        let s = stage(fet, 0.7, 0.8);
        let heavy = s
            .simulated_voltage_gain(Resistance::from_ohms(1e9))
            .unwrap();
        let light = s
            .simulated_voltage_gain(Resistance::from_kilohms(1.0))
            .unwrap();
        assert!(light < heavy);
    }

    #[test]
    fn validation() {
        let fet: Arc<dyn Fet> = Arc::new(AlphaPowerFet::fig2_nfet());
        assert!(RfStage::new(
            fet.clone(),
            Voltage::from_volts(0.5),
            Voltage::from_volts(0.5),
            Capacitance::ZERO,
            Capacitance::from_attofarads(5.0),
            Resistance::from_ohms(100.0)
        )
        .is_err());
        assert!(RfStage::new(
            fet,
            Voltage::from_volts(0.5),
            Voltage::from_volts(0.5),
            Capacitance::from_attofarads(5.0),
            Capacitance::from_attofarads(5.0),
            Resistance::from_ohms(0.0)
        )
        .is_err());
    }
}

//! The Fig. 2 experiment: complementary inverters, voltage-transfer
//! curves, gain, and noise margins.
//!
//! Two inverters are compared exactly as in the paper:
//!
//! * [`Inverter::fig2_saturating`] — symmetric alpha-power n/p FETs with
//!   realistic (not perfect) current saturation. Its VTC swings rail to
//!   rail with gain ≫ 1 and ~0.4 V noise margins at `V_DD = 1 V`.
//! * [`Inverter::fig2_non_saturating`] — the same drive strength from
//!   gate-steered linear resistors ("real GNR" devices). Its absolute
//!   gain never exceeds one: the noise margin is *zero*, both devices
//!   conduct through the whole transition, and cascaded logic has no
//!   restoring levels.

use std::sync::Arc;

use carbon_devices::{AlphaPowerFet, Fet, LinearGnrFet};
use carbon_spice::Circuit;
use carbon_units::{Capacitance, Time, Voltage};

use crate::error::LogicError;

/// Static noise margins extracted from a VTC by the unity-gain-point
/// method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Low noise margin `NM_L = V_IL − V_OL`, V.
    pub low: f64,
    /// High noise margin `NM_H = V_OH − V_IH`, V.
    pub high: f64,
}

/// A complementary inverter built from two compact models.
pub struct Inverter {
    nfet: Arc<dyn Fet>,
    pfet: Arc<dyn Fet>,
    vdd: f64,
}

impl std::fmt::Debug for Inverter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inverter").field("vdd", &self.vdd).finish()
    }
}

impl Inverter {
    /// Builds an inverter from an n-type pull-down and p-type pull-up.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] if `vdd` is not positive
    /// or the polarities are wrong.
    pub fn new(nfet: Arc<dyn Fet>, pfet: Arc<dyn Fet>, vdd: Voltage) -> Result<Self, LogicError> {
        if !(vdd.volts().is_finite() && vdd.volts() > 0.0) {
            return Err(LogicError::InvalidParameter {
                reason: format!("vdd must be positive, got {} V", vdd.volts()),
            });
        }
        if nfet.polarity() != carbon_devices::Polarity::NType {
            return Err(LogicError::InvalidParameter {
                reason: "pull-down device must be n-type".into(),
            });
        }
        if pfet.polarity() != carbon_devices::Polarity::PType {
            return Err(LogicError::InvalidParameter {
                reason: "pull-up device must be p-type".into(),
            });
        }
        Ok(Self {
            nfet,
            pfet,
            vdd: vdd.volts(),
        })
    }

    /// The Fig. 2(a)/(c) inverter: symmetric saturating FETs at
    /// `V_DD = 1 V`.
    pub fn fig2_saturating() -> Self {
        Self::new(
            Arc::new(AlphaPowerFet::fig2_nfet()),
            Arc::new(AlphaPowerFet::fig2_pfet()),
            Voltage::from_volts(1.0),
        )
        .expect("preset inverter parameters are valid")
    }

    /// The Fig. 2(b)/(d) inverter: same on-current but no saturation.
    pub fn fig2_non_saturating() -> Self {
        Self::new(
            Arc::new(LinearGnrFet::fig2_nfet()),
            Arc::new(LinearGnrFet::fig2_pfet()),
            Voltage::from_volts(1.0),
        )
        .expect("preset inverter parameters are valid")
    }

    /// Supply voltage.
    pub fn vdd(&self) -> Voltage {
        Voltage::from_volts(self.vdd)
    }

    fn circuit(&self) -> Result<Circuit, LogicError> {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd", "vdd", "0", self.vdd);
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.fet(
            "mp",
            "out",
            "in",
            "vdd",
            Arc::new(FetRef(self.pfet.clone())),
        )?;
        ckt.fet("mn", "out", "in", "0", Arc::new(FetRef(self.nfet.clone())))?;
        Ok(ckt)
    }

    /// Sweeps the input and returns the voltage-transfer curve with `n`
    /// points (the supply current is captured alongside for the
    /// short-circuit-power argument).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn vtc(&self, n: usize) -> Result<Vtc, LogicError> {
        let n = n.max(8);
        let ckt = self.circuit()?;
        let step = self.vdd / (n - 1) as f64;
        // Dense curves fan out over the runtime executor in fixed chunks
        // (deterministic at any thread count); short sweeps stay serial
        // where the warm-start chain alone is cheapest.
        let sweep = if n >= 64 {
            ckt.dc_sweep_par("vin", 0.0, self.vdd, step, 16)?
        } else {
            ckt.dc_sweep("vin", 0.0, self.vdd, step)?
        };
        let vin = sweep.sweep_values().to_vec();
        let vout = sweep.voltages("out")?;
        let supply_current = sweep
            .currents("vdd")?
            .into_iter()
            .map(|i| i.abs())
            .collect();
        Ok(Vtc {
            vin,
            vout,
            supply_current,
            vdd: self.vdd,
        })
    }

    /// Drives the inverter with a full-swing input step into a load
    /// capacitance and reports the 50 %-to-50 % propagation delays.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures;
    /// [`LogicError::MissingFeature`] if the output never crosses
    /// mid-rail (a non-restoring inverter driving a heavy load).
    pub fn propagation_delay(
        &self,
        load: Capacitance,
        horizon: Time,
    ) -> Result<InverterDelays, LogicError> {
        let mut ckt = self.circuit()?;
        ckt.capacitor("cl", "out", "0", load.farads())?;
        let t_half = horizon.seconds() / 2.0;
        let edge = horizon.seconds() / 200.0;
        ckt.set_source_value("vin", 0.0)?;
        // Replace the input with a pulse: low half, then high half.
        let mut ckt2 = Circuit::new();
        ckt2.voltage_source("vdd", "vdd", "0", self.vdd);
        ckt2.voltage_source_wave(
            "vin",
            "in",
            "0",
            carbon_spice::Waveform::Pulse {
                low: 0.0,
                high: self.vdd,
                delay: t_half * 0.2,
                rise: edge,
                fall: edge,
                width: t_half,
                period: 0.0,
            },
        )?;
        ckt2.fet(
            "mp",
            "out",
            "in",
            "vdd",
            Arc::new(FetRef(self.pfet.clone())),
        )?;
        ckt2.fet("mn", "out", "in", "0", Arc::new(FetRef(self.nfet.clone())))?;
        ckt2.capacitor("cl", "out", "0", load.farads())?;
        let tran = ckt2.transient(horizon.seconds() / 2000.0, horizon.seconds())?;
        let t = tran.times();
        let vin = tran.voltages("in")?;
        let vout = tran.voltages("out")?;
        let mid = self.vdd / 2.0;
        let cross = |x: &[f64], rising: bool, from: f64| -> Option<f64> {
            for k in 1..x.len() {
                if t[k] <= from {
                    continue;
                }
                let (a, b) = (x[k - 1], x[k]);
                if (rising && a < mid && b >= mid) || (!rising && a > mid && b <= mid) {
                    let f = (mid - a) / (b - a);
                    return Some(t[k - 1] + f * (t[k] - t[k - 1]));
                }
            }
            None
        };
        let t_in_rise = cross(vin, true, 0.0).ok_or_else(|| LogicError::MissingFeature {
            feature: "input rising edge",
            reason: "pulse did not reach mid-rail".into(),
        })?;
        let t_out_fall =
            cross(vout, false, t_in_rise).ok_or_else(|| LogicError::MissingFeature {
                feature: "output falling edge",
                reason: "output never crossed mid-rail after the input rose".into(),
            })?;
        let t_in_fall =
            cross(vin, false, t_out_fall).ok_or_else(|| LogicError::MissingFeature {
                feature: "input falling edge",
                reason: "pulse did not return to low".into(),
            })?;
        let t_out_rise =
            cross(vout, true, t_in_fall).ok_or_else(|| LogicError::MissingFeature {
                feature: "output rising edge",
                reason: "output never recovered high".into(),
            })?;
        Ok(InverterDelays {
            high_to_low: Time::from_seconds(t_out_fall - t_in_rise),
            low_to_high: Time::from_seconds(t_out_rise - t_in_fall),
        })
    }
}

/// 50 %-to-50 % propagation delays of an inverter stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterDelays {
    /// Output falling delay after the input rises.
    pub high_to_low: Time,
    /// Output rising delay after the input falls.
    pub low_to_high: Time,
}

impl InverterDelays {
    /// Average stage delay.
    pub fn average(&self) -> Time {
        (self.high_to_low + self.low_to_high) / 2.0
    }
}

/// Adapter so an `Arc<dyn Fet>` can be placed in a circuit (the netlist
/// wants `Arc<dyn FetCurve>`).
struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

/// A voltage-transfer curve with the supply current captured along the
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    vin: Vec<f64>,
    vout: Vec<f64>,
    supply_current: Vec<f64>,
    vdd: f64,
}

impl Vtc {
    /// Builds a VTC from raw data (mostly useful in tests; analyses
    /// produce this via [`Inverter::vtc`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or fewer than 3 points.
    pub fn from_raw(vin: Vec<f64>, vout: Vec<f64>, supply_current: Vec<f64>, vdd: f64) -> Self {
        assert!(vin.len() >= 3, "need at least 3 points");
        assert_eq!(vin.len(), vout.len());
        assert_eq!(vin.len(), supply_current.len());
        Self {
            vin,
            vout,
            supply_current,
            vdd,
        }
    }

    /// Input grid, V.
    pub fn vin(&self) -> &[f64] {
        &self.vin
    }

    /// Output voltages, V.
    pub fn vout(&self) -> &[f64] {
        &self.vout
    }

    /// Supply-current magnitude along the sweep, A.
    pub fn supply_current(&self) -> &[f64] {
        &self.supply_current
    }

    /// Small-signal gain `dV_out/dV_in` at every interior point
    /// (central differences; endpoints replicated).
    pub fn gain(&self) -> Vec<f64> {
        let n = self.vin.len();
        let mut g = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // central difference reads k±1
        for k in 1..n - 1 {
            g[k] = (self.vout[k + 1] - self.vout[k - 1]) / (self.vin[k + 1] - self.vin[k - 1]);
        }
        g[0] = g[1];
        g[n - 1] = g[n - 2];
        g
    }

    /// Largest absolute gain along the curve.
    pub fn max_abs_gain(&self) -> f64 {
        self.gain().iter().fold(0.0, |m, g| m.max(g.abs()))
    }

    /// Input voltage where the output crosses `V_DD/2` (the switching
    /// threshold `V_M`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::MissingFeature`] if the output never
    /// crosses mid-rail.
    pub fn switching_threshold(&self) -> Result<f64, LogicError> {
        let mid = self.vdd / 2.0;
        for k in 1..self.vin.len() {
            let (a, b) = (self.vout[k - 1], self.vout[k]);
            if (a >= mid && b <= mid) || (a <= mid && b >= mid) {
                if a == b {
                    return Ok(self.vin[k - 1]);
                }
                let f = (mid - a) / (b - a);
                return Ok(self.vin[k - 1] + f * (self.vin[k] - self.vin[k - 1]));
            }
        }
        Err(LogicError::MissingFeature {
            feature: "switching threshold",
            reason: "output never crosses mid-rail".into(),
        })
    }

    /// Static noise margins by the unity-gain-point method: `V_IL`/`V_IH`
    /// are the inputs where the gain magnitude crosses one, and the
    /// corresponding outputs give `V_OH`/`V_OL`.
    ///
    /// If the gain never reaches unity — the paper's non-saturating
    /// inverter — both margins are **zero** by definition (there is no
    /// regenerative region at all), which is exactly the Fig. 2(d)
    /// verdict; this is reported as `Ok(NoiseMargins { low: 0, high: 0 })`
    /// rather than an error so benchmark tables can print it.
    pub fn noise_margins(&self) -> NoiseMargins {
        let gain = self.gain();
        // Find first and last |gain| ≥ 1 regions.
        let mut v_il = None;
        let mut v_ih = None;
        for k in 1..gain.len() {
            let (g0, g1) = (gain[k - 1].abs(), gain[k].abs());
            if g0 < 1.0 && g1 >= 1.0 && v_il.is_none() {
                let f = (1.0 - g0) / (g1 - g0);
                v_il = Some((
                    self.vin[k - 1] + f * (self.vin[k] - self.vin[k - 1]),
                    self.vout[k - 1] + f * (self.vout[k] - self.vout[k - 1]),
                ));
            }
            if g0 >= 1.0 && g1 < 1.0 {
                let f = (g0 - 1.0) / (g0 - g1);
                v_ih = Some((
                    self.vin[k - 1] + f * (self.vin[k] - self.vin[k - 1]),
                    self.vout[k - 1] + f * (self.vout[k] - self.vout[k - 1]),
                ));
            }
        }
        match (v_il, v_ih) {
            (Some((vil, _voh_at_il)), Some((vih, _vol_at_ih))) => {
                // V_OH: output at V_IL input; V_OL: output at V_IH input.
                let v_oh = self.vout_at(vil);
                let v_ol = self.vout_at(vih);
                NoiseMargins {
                    low: (vil - v_ol).max(0.0),
                    high: (v_oh - vih).max(0.0),
                }
            }
            _ => NoiseMargins {
                low: 0.0,
                high: 0.0,
            },
        }
    }

    /// Peak supply current during the transition (the short-circuit
    /// current the paper says "would burn dc power" in the
    /// non-saturating inverter).
    pub fn peak_short_circuit_current(&self) -> f64 {
        self.supply_current.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of the input range over which the supply current exceeds
    /// half its peak — a direct measure of "conductive almost during the
    /// whole transition".
    pub fn conduction_fraction(&self) -> f64 {
        let half = self.peak_short_circuit_current() / 2.0;
        if half == 0.0 {
            return 0.0;
        }
        let n = self.supply_current.len();
        self.supply_current.iter().filter(|&&i| i > half).count() as f64 / n as f64
    }

    fn vout_at(&self, vin: f64) -> f64 {
        if vin <= self.vin[0] {
            return self.vout[0];
        }
        if vin >= *self.vin.last().expect("non-empty") {
            return *self.vout.last().expect("non-empty");
        }
        let k = self.vin.partition_point(|&v| v < vin);
        let f = (vin - self.vin[k - 1]) / (self.vin[k] - self.vin[k - 1]);
        self.vout[k - 1] + f * (self.vout[k] - self.vout[k - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_inverter_has_large_gain_and_margins() {
        let inv = Inverter::fig2_saturating();
        let vtc = inv.vtc(101).unwrap();
        assert!(vtc.max_abs_gain() > 3.0, "gain {}", vtc.max_abs_gain());
        let nm = vtc.noise_margins();
        // The paper: "almost 0.4 Volt at the high as well as at the low
        // voltage side".
        assert!((0.25..0.48).contains(&nm.low), "NM_L = {:.3} V", nm.low);
        assert!((0.25..0.48).contains(&nm.high), "NM_H = {:.3} V", nm.high);
    }

    #[test]
    fn saturating_inverter_swings_rail_to_rail() {
        let vtc = Inverter::fig2_saturating().vtc(101).unwrap();
        assert!(vtc.vout()[0] > 0.98);
        assert!(vtc.vout()[100] < 0.02);
        let vm = vtc.switching_threshold().unwrap();
        assert!((vm - 0.5).abs() < 0.06, "V_M = {vm}");
    }

    #[test]
    fn non_saturating_inverter_never_reaches_unity_gain() {
        let inv = Inverter::fig2_non_saturating();
        let vtc = inv.vtc(101).unwrap();
        assert!(
            vtc.max_abs_gain() < 1.0,
            "max gain {} must stay below one",
            vtc.max_abs_gain()
        );
        let nm = vtc.noise_margins();
        assert_eq!(nm.low, 0.0);
        assert_eq!(nm.high, 0.0);
    }

    #[test]
    fn non_saturating_inverter_burns_through_current() {
        let good = Inverter::fig2_saturating().vtc(101).unwrap();
        let bad = Inverter::fig2_non_saturating().vtc(101).unwrap();
        assert!(
            bad.conduction_fraction() > 1.7 * good.conduction_fraction(),
            "bad {:.2} vs good {:.2}",
            bad.conduction_fraction(),
            good.conduction_fraction()
        );
    }

    #[test]
    fn fig2_inverters_have_comparable_drive() {
        // The comparison is fair: same on-current at full swing.
        let good = Inverter::fig2_saturating().vtc(51).unwrap();
        let bad = Inverter::fig2_non_saturating().vtc(51).unwrap();
        let ratio = good.peak_short_circuit_current() / bad.peak_short_circuit_current();
        assert!(ratio < 3.0 && ratio > 0.05, "peak current ratio {ratio}");
    }

    #[test]
    fn propagation_delay_with_10ff_load() {
        // Fig. 2 uses a 10 fF load; with ~0.5 mA drive the stage delay
        // is tens of picoseconds: t ≈ C·V/(2·I) ≈ 10 ps.
        let inv = Inverter::fig2_saturating();
        let d = inv
            .propagation_delay(
                Capacitance::from_femtofarads(10.0),
                Time::from_nanoseconds(1.0),
            )
            .unwrap();
        let avg = d.average().picoseconds();
        assert!((2.0..80.0).contains(&avg), "avg delay {avg} ps");
    }

    #[test]
    fn warm_start_strictly_cuts_fig2_sweep_iterations() {
        // The Fig. 2 deck is the canonical consumer of the warm-started
        // sweep: adjacent bias points have nearby solutions, so seeding
        // each point from the last must save Newton iterations over
        // solving every point from scratch — and produce the same curve.
        use carbon_spice::SweepOptions;
        let inv = Inverter::fig2_saturating();
        let ckt = inv.circuit().unwrap();
        let warm = ckt
            .dc_sweep_with("vin", 0.0, 1.0, 0.01, SweepOptions::default())
            .unwrap();
        let cold = ckt
            .dc_sweep_with(
                "vin",
                0.0,
                1.0,
                0.01,
                SweepOptions {
                    warm_start: false,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
        assert!(
            warm.total_newton_iterations() < cold.total_newton_iterations(),
            "warm {} must beat cold {}",
            warm.total_newton_iterations(),
            cold.total_newton_iterations()
        );
        let (vw, vc) = (warm.voltages("out").unwrap(), cold.voltages("out").unwrap());
        for (a, b) in vw.iter().zip(vc) {
            assert!((a - b).abs() < 1e-7, "curves must agree: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_construction() {
        let n = Arc::new(AlphaPowerFet::fig2_nfet());
        let p = Arc::new(AlphaPowerFet::fig2_pfet());
        assert!(Inverter::new(n.clone(), p.clone(), Voltage::from_volts(0.0)).is_err());
        assert!(Inverter::new(p.clone(), p.clone(), Voltage::from_volts(1.0)).is_err());
        assert!(Inverter::new(n.clone(), n, Voltage::from_volts(1.0)).is_err());
        let _ = p;
    }

    #[test]
    fn vtc_helpers_on_synthetic_data() {
        // Ideal steep inverter: step at 0.5.
        let vin: Vec<f64> = (0..=100).map(|k| k as f64 / 100.0).collect();
        let vout: Vec<f64> = vin
            .iter()
            .map(|&v| 1.0 / (1.0 + ((v - 0.5) / 0.01).exp()))
            .collect();
        let i = vec![0.0; vin.len()];
        let vtc = Vtc::from_raw(vin, vout, i, 1.0);
        assert!(vtc.max_abs_gain() > 10.0);
        let vm = vtc.switching_threshold().unwrap();
        assert!((vm - 0.5).abs() < 0.01);
        let nm = vtc.noise_margins();
        assert!(nm.low > 0.3 && nm.high > 0.3);
    }

    #[test]
    fn scaling_argument_holds_at_half_vdd() {
        // §II: "this is simply a result of the constant field scaled I-V
        // curves ... translates well to the higher and lower voltage
        // levels". Check the saturating inverter still regenerates at
        // V_DD = 0.6 V.
        let inv = Inverter::new(
            Arc::new(AlphaPowerFet::fig2_nfet()),
            Arc::new(AlphaPowerFet::fig2_pfet()),
            Voltage::from_volts(0.6),
        )
        .unwrap();
        let vtc = inv.vtc(61).unwrap();
        assert!(vtc.max_abs_gain() > 1.5, "gain {}", vtc.max_abs_gain());
    }
}

//! CNT logic: from inverter voltage-transfer curves to a one-bit
//! computer.
//!
//! This crate builds the paper's circuit-level arguments on top of
//! `carbon-devices` and `carbon-spice`:
//!
//! * [`inverter`] — the Fig. 2 experiment: a complementary inverter made
//!   of any [`Fet`](carbon_devices::Fet) pair, its voltage-transfer
//!   curve, gain, and noise margins. With saturating devices the VTC is
//!   near-ideal; with the non-saturating "real GNR" devices the gain
//!   never reaches one and the noise margin collapses — the paper's
//!   knock-out argument against GNR logic.
//! * [`ring`] — ring oscillators for delay extraction.
//! * [`rf`] — small-signal figures of merit (`A_v`, `f_T`, `f_max`):
//!   the §II argument that without saturation there is no voltage gain
//!   and hence no usable `f_max`.
//! * [`digital`] — a gate-level event-driven simulator with delays
//!   calibrated from the analog stage delay.
//! * [`computer`] — a SUBNEG (subtract-and-branch-if-negative) one-bit-
//!   datapath computer in the spirit of the Shulaker CNT computer
//!   (paper §V, \[20\]), executing real programs over the gate-level
//!   substrate.

#![deny(missing_docs)]

pub mod assembler;
pub mod computer;
pub mod digital;
pub mod error;
pub mod gates;
pub mod inverter;
pub mod rf;
pub mod ring;
pub mod synthesis;

pub use assembler::{assemble, Program};
pub use computer::SubnegComputer;
pub use digital::GateNetwork;
pub use error::LogicError;
pub use gates::{GateTopology, StaticGate};
pub use inverter::{Inverter, NoiseMargins, Vtc};
pub use rf::{RfFigures, RfStage};
pub use ring::RingOscillator;
pub use synthesis::Synthesizer;

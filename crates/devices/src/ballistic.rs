//! Self-consistent top-of-barrier ballistic FET model
//! (Natori / Rahman–Lundstrom), the physics behind the paper's Fig. 1
//! comparison and the CNT entries of Fig. 5.
//!
//! The channel is reduced to the potential energy `U` at the top of the
//! source-drain barrier. States moving +k are filled from the source
//! Fermi level, −k states from the drain, and `U` follows the terminal
//! voltages through capacitive control factors plus the charging feedback
//! of the filled states:
//!
//! ```text
//! U = −α_G·V_GS − α_D·V_DS + q·Δn(U)/C_ins
//! I = b·[I⁺(µ_S − U) − I⁺(µ_D − U)]
//! ```
//!
//! where `I⁺` is the closed-form directed current of the 1-D band
//! ([`Band1d::directed_current`]) and `b ∈ (0, 1]` a ballisticity factor
//! (`λ/(λ + L)` for a mean free path λ). Evaluated over a
//! [`CntBand`] this model reproduces the measured
//! CNT-FET behaviour the paper highlights — including current saturation
//! at `V_DS` beyond a few `kT/q` — and over a
//! [`GnrBand`] it reproduces the *prediction* that
//! GNRs should behave the same (the paper's point is that real GNRs
//! don't).

use std::sync::Arc;

use carbon_band::math::{brent, FindRootError};
use carbon_band::{Band1d, CntBand, GnrBand};
use carbon_units::consts::Q_E;
use carbon_units::{Energy, Length, Temperature};

use crate::{Fet, Polarity};

/// Self-consistent ballistic top-of-barrier FET.
///
/// Construct through [`BallisticFet::builder`]; presets
/// [`BallisticFet::cnt_fig1`] and [`BallisticFet::gnr_fig1`] reproduce
/// the two devices of the paper's Fig. 1 (same 0.56 eV bandgap).
///
/// # Examples
///
/// ```
/// use carbon_devices::{BallisticFet, Fet};
/// use carbon_units::Voltage;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
/// let fet = BallisticFet::cnt_fig1()?;
/// let on = fet.drain_current(Voltage::from_volts(0.5), Voltage::from_volts(0.5));
/// let off = fet.drain_current(Voltage::from_volts(0.0), Voltage::from_volts(0.5));
/// assert!(on.amperes() / off.amperes() > 1e3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BallisticFet {
    band: Arc<dyn Band1d + Send + Sync>,
    c_ins: f64,
    alpha_g: f64,
    alpha_d: f64,
    /// Source Fermi level relative to channel mid-gap at zero bias, eV.
    ef0: f64,
    temperature: Temperature,
    ballisticity: f64,
    polarity: Polarity,
    width: Option<Length>,
    /// Equilibrium net carrier density, 1/m (cached at build time).
    n0: f64,
}

impl std::fmt::Debug for BallisticFet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BallisticFet")
            .field("bandgap_ev", &self.band.bandgap().electron_volts())
            .field("c_ins", &self.c_ins)
            .field("alpha_g", &self.alpha_g)
            .field("alpha_d", &self.alpha_d)
            .field("ef0_ev", &self.ef0)
            .field("ballisticity", &self.ballisticity)
            .field("polarity", &self.polarity)
            .finish()
    }
}

/// Error building a [`BallisticFet`] from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildBallisticError(String);

impl std::fmt::Display for BuildBallisticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ballistic FET parameters: {}", self.0)
    }
}

impl std::error::Error for BuildBallisticError {}

/// Builder for [`BallisticFet`].
#[derive(Clone)]
pub struct BallisticFetBuilder {
    band: Arc<dyn Band1d + Send + Sync>,
    c_ins: f64,
    alpha_g: f64,
    alpha_d: f64,
    ef0: Option<f64>,
    vt: Option<f64>,
    temperature: Temperature,
    ballisticity: f64,
    polarity: Polarity,
    width: Option<Length>,
}

impl BallisticFetBuilder {
    /// Gate insulator capacitance per unit channel length, F/m
    /// (default `4·10⁻¹⁰`, a wrap-gate high-k stack on a ~1.5 nm tube).
    pub fn gate_capacitance_per_length(mut self, c: f64) -> Self {
        self.c_ins = c;
        self
    }

    /// Gate control factor α_G (default 0.88).
    pub fn alpha_gate(mut self, a: f64) -> Self {
        self.alpha_g = a;
        self
    }

    /// Drain control factor α_D (default 0.035; the DIBL knob).
    pub fn alpha_drain(mut self, a: f64) -> Self {
        self.alpha_d = a;
        self
    }

    /// Places the zero-bias source Fermi level `ef0` eV above mid-gap.
    /// Mutually exclusive with [`threshold_voltage`](Self::threshold_voltage)
    /// (the later call wins).
    pub fn fermi_offset_ev(mut self, ef0: f64) -> Self {
        self.ef0 = Some(ef0);
        self.vt = None;
        self
    }

    /// Sets an approximate threshold voltage by positioning the Fermi
    /// level: `ef0 = Δ₁ − α_G·V_T` (barrier reaches the Fermi level at
    /// `V_GS ≈ V_T`). Default: `V_T = 0.3 V`.
    pub fn threshold_voltage(mut self, vt: f64) -> Self {
        self.vt = Some(vt);
        self.ef0 = None;
        self
    }

    /// Lattice temperature (default 300 K).
    pub fn temperature(mut self, t: Temperature) -> Self {
        self.temperature = t;
        self
    }

    /// Direct ballisticity factor in `(0, 1]` (default 1: fully
    /// ballistic).
    pub fn ballisticity(mut self, b: f64) -> Self {
        self.ballisticity = b;
        self
    }

    /// Ballisticity from channel length and mean free path:
    /// `b = λ/(λ + L)`.
    pub fn channel(mut self, length: Length, mean_free_path: Length) -> Self {
        self.ballisticity = mean_free_path.meters() / (mean_free_path.meters() + length.meters());
        self
    }

    /// Makes the device p-type (mirror symmetry).
    pub fn p_type(mut self) -> Self {
        self.polarity = Polarity::PType;
        self
    }

    /// Footprint width used to normalize currents per micron (e.g. the
    /// CNT diameter, or a placement pitch).
    pub fn width(mut self, w: Length) -> Self {
        self.width = Some(w);
        self
    }

    /// Builds the device, validating parameters and caching the
    /// equilibrium charge.
    ///
    /// # Errors
    ///
    /// Returns [`BuildBallisticError`] for non-positive capacitance,
    /// control factors outside `(0, 1]`, or ballisticity outside
    /// `(0, 1]`.
    pub fn build(self) -> Result<BallisticFet, BuildBallisticError> {
        if !(self.c_ins.is_finite() && self.c_ins > 0.0) {
            return Err(BuildBallisticError(format!(
                "gate capacitance must be positive, got {}",
                self.c_ins
            )));
        }
        for (name, v) in [("alpha_g", self.alpha_g), ("alpha_d", self.alpha_d)] {
            if !(v.is_finite() && v > 0.0 && v <= 1.0) {
                return Err(BuildBallisticError(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        if !(self.ballisticity > 0.0 && self.ballisticity <= 1.0) {
            return Err(BuildBallisticError(format!(
                "ballisticity must be in (0, 1], got {}",
                self.ballisticity
            )));
        }
        let delta1 = self
            .band
            .subbands()
            .first()
            .map(|s| s.edge.electron_volts())
            .unwrap_or(0.0);
        let ef0 = match (self.ef0, self.vt) {
            (Some(e), _) => e,
            (None, Some(vt)) => delta1 - self.alpha_g * vt,
            (None, None) => delta1 - self.alpha_g * 0.3,
        };
        let mut fet = BallisticFet {
            band: self.band,
            c_ins: self.c_ins,
            alpha_g: self.alpha_g,
            alpha_d: self.alpha_d,
            ef0,
            temperature: self.temperature,
            ballisticity: self.ballisticity,
            polarity: self.polarity,
            width: self.width,
            n0: 0.0,
        };
        fet.n0 = fet.net_density(0.0, 0.0);
        Ok(fet)
    }
}

impl BallisticFet {
    /// Starts a builder over an arbitrary band structure.
    pub fn builder(band: Arc<dyn Band1d + Send + Sync>) -> BallisticFetBuilder {
        BallisticFetBuilder {
            band,
            c_ins: 4e-10,
            alpha_g: 0.88,
            alpha_d: 0.035,
            ef0: None,
            vt: None,
            temperature: Temperature::room(),
            ballisticity: 1.0,
            polarity: Polarity::NType,
            width: None,
        }
    }

    /// The paper's Fig. 1 CNT-FET: a semiconducting nanotube with
    /// `E_g = 0.56 eV` (d ≈ 1.5 nm), wrap-gate stack, `V_T ≈ 0.3 V`.
    ///
    /// # Errors
    ///
    /// Propagates band-structure or parameter validation failures (none
    /// occur for the fixed preset values in practice).
    pub fn cnt_fig1() -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56))?;
        let d = Length::from_nanometers(1.5);
        Ok(Self::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .width(d)
            .build()?)
    }

    /// The paper's Fig. 1 GNR-FET: the N = 18 armchair ribbon with the
    /// same 0.56 eV bandgap and the same electrostatics, differing only
    /// in band structure (spin-only degeneracy).
    ///
    /// # Errors
    ///
    /// Propagates band-structure or parameter validation failures (none
    /// occur for the fixed preset values in practice).
    pub fn gnr_fig1() -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let band = GnrBand::armchair(18)?;
        let w = band.width();
        Ok(Self::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .width(w)
            .build()?)
    }

    /// The band structure this device transports through.
    pub fn band(&self) -> &(dyn Band1d + Send + Sync) {
        self.band.as_ref()
    }

    /// Ballisticity factor in use.
    pub fn ballisticity(&self) -> f64 {
        self.ballisticity
    }

    /// Mobile electron density (1/m) at the barrier top for a given
    /// barrier shift `u` (eV) and drain bias (V), averaging source- and
    /// drain-filled hemispheres.
    ///
    /// The model is unipolar (conduction-band states only), as in the
    /// standard FETToy formulation: the valence band never approaches
    /// either contact Fermi level in the operating window of the paper's
    /// devices, and including drain-referenced hole filling would inject
    /// spurious ambipolar charge at the barrier top.
    fn net_density(&self, u: f64, vds: f64) -> f64 {
        let t = self.temperature;
        let mu_s = Energy::from_electron_volts(self.ef0 - u);
        let mu_d = Energy::from_electron_volts(self.ef0 - u - vds);
        0.5 * (self.band.electron_density(mu_s, t) + self.band.electron_density(mu_d, t))
    }

    /// Solves the self-consistent barrier potential `u` (eV) at a bias
    /// point of the intrinsic n-type device.
    fn solve_barrier(&self, vgs: f64, vds: f64) -> f64 {
        let laplace = -self.alpha_g * vgs - self.alpha_d * vds;
        let residual =
            |u: f64| u - laplace - Q_E * (self.net_density(u, vds) - self.n0) / self.c_ins;
        // Expanding bracket around the Laplace solution. The residual is
        // strictly increasing in u, so a sign change brackets the root.
        let mut half_width = 0.1;
        for _ in 0..24 {
            let (lo, hi) = (laplace - half_width, laplace + half_width + 0.5);
            let (flo, fhi) = (residual(lo), residual(hi));
            if flo <= 0.0 && fhi >= 0.0 {
                match brent(residual, lo, hi, 1e-9) {
                    Ok(u) => return u,
                    Err(FindRootError::IterationLimit { best }) => return best,
                    Err(FindRootError::NoBracket { .. }) => break,
                }
            }
            half_width *= 2.0;
        }
        // Unreachable for physical parameters; fall back to the
        // charge-free barrier.
        laplace
    }

    /// Intrinsic n-type drain current at raw bias, A.
    fn ids_ntype(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            // Source/drain exchange for a symmetric device.
            return -self.ids_ntype(vgs - vds, -vds);
        }
        let u = self.solve_barrier(vgs, vds);
        let t = self.temperature;
        let mu_s = Energy::from_electron_volts(self.ef0 - u);
        let mu_d = Energy::from_electron_volts(self.ef0 - u - vds);
        self.ballisticity
            * (self.band.directed_current(mu_s, t) - self.band.directed_current(mu_d, t))
    }
}

impl carbon_spice::FetCurve for BallisticFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        match self.polarity {
            Polarity::NType => self.ids_ntype(vgs, vds),
            Polarity::PType => -self.ids_ntype(-vgs, -vds),
        }
    }
}

impl crate::batch::BatchEval for BallisticFet {
    fn ids_soa(&self, vgs: &[f64], vds: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        // Each lane is a self-consistent Brent root-find with nested
        // quadrature — nothing to vectorize — so the kernel only hoists
        // the polarity dispatch out of the loop. Bit-identity with the
        // scalar path is trivial: the same `ids_ntype` runs per lane.
        match self.polarity {
            Polarity::NType => {
                for ((o, &g), &d) in out.iter_mut().zip(vgs).zip(vds) {
                    *o = self.ids_ntype(g, d);
                }
            }
            Polarity::PType => {
                for ((o, &g), &d) in out.iter_mut().zip(vgs).zip(vds) {
                    *o = -self.ids_ntype(-g, -d);
                }
            }
        }
    }
}

impl Fet for BallisticFet {
    fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_spice::FetCurve;
    use carbon_units::Voltage;

    fn cnt() -> BallisticFet {
        BallisticFet::cnt_fig1().unwrap()
    }

    #[test]
    fn on_current_is_microamp_scale() {
        let i = cnt().ids(0.5, 0.5);
        assert!(i > 1e-6 && i < 1e-4, "Ion = {i:.3e} A");
    }

    #[test]
    fn off_state_is_orders_of_magnitude_lower() {
        let f = cnt();
        let on = f.ids(0.5, 0.5);
        let off = f.ids(0.0, 0.5);
        assert!(on / off > 1e3, "on/off = {:.1e}", on / off);
    }

    #[test]
    fn output_curve_saturates() {
        // The defining CNT-FET property in the paper: current hardly
        // changes between V_DS = 0.2 V and 0.5 V.
        let f = cnt();
        let i02 = f.ids(0.5, 0.2);
        let i05 = f.ids(0.5, 0.5);
        assert!(i05 >= i02, "monotone");
        assert!(
            i05 / i02 < 1.35,
            "saturation: I(0.5)/I(0.2) = {:.3}",
            i05 / i02
        );
        // While the low-V_DS region is resistive (roughly linear).
        let i005 = f.ids(0.5, 0.05);
        let i01 = f.ids(0.5, 0.1);
        assert!(i01 / i005 > 1.5, "linear onset: {:.3}", i01 / i005);
    }

    #[test]
    fn subthreshold_swing_is_near_thermal() {
        let f = cnt();
        // Measure decades per volt deep below threshold.
        let i1 = f.ids(0.05, 0.5);
        let i2 = f.ids(0.11, 0.5);
        let ss = 0.06 / (i2 / i1).log10() * 1e3; // mV/dec
        assert!(
            (57.0..75.0).contains(&ss),
            "SS = {ss:.1} mV/dec (thermal limit ≈ 60/α_G ≈ 68)"
        );
    }

    #[test]
    fn gnr_twin_overlaps_cnt_in_subthreshold() {
        // Fig. 1(a): on a log plot the two transfer curves overlap; the
        // residual offset is the degeneracy factor (4 vs 2).
        let c = cnt();
        let g = BallisticFet::gnr_fig1().unwrap();
        let ic = c.ids(0.1, 0.5);
        let ig = g.ids(0.1, 0.5);
        let ratio = ic / ig;
        assert!((1.2..4.5).contains(&ratio), "CNT/GNR = {ratio:.2}");
    }

    #[test]
    fn gnr_twin_also_saturates_in_theory() {
        // Fig. 1(b): the *simulated* GNR saturates like the CNT — the
        // paper's contrast is with measured devices, not the model.
        let g = BallisticFet::gnr_fig1().unwrap();
        let r = g.ids(0.5, 0.5) / g.ids(0.5, 0.2);
        assert!(r < 1.35, "GNR model saturation ratio {r:.3}");
    }

    #[test]
    fn ptype_mirrors_ntype() {
        let n = cnt();
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let p = BallisticFet::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .p_type()
            .build()
            .unwrap();
        let i_n = n.ids(0.5, 0.5);
        let i_p = p.ids(-0.5, -0.5);
        assert!((i_n + i_p).abs() / i_n < 1e-9, "p mirrors n");
        assert_eq!(p.polarity(), Polarity::PType);
    }

    #[test]
    fn reverse_drain_antisymmetry() {
        let f = cnt();
        let fwd = f.ids(0.3, 0.2);
        let rev = f.ids(0.1, -0.2);
        // vgs' = 0.3 − 0.2 referenced to the swapped source.
        assert!((fwd + rev).abs() / fwd < 1e-9);
    }

    #[test]
    fn ballisticity_scales_current() {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let half = BallisticFet::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .ballisticity(0.5)
            .build()
            .unwrap();
        let full = cnt();
        let r = half.ids(0.5, 0.5) / full.ids(0.5, 0.5);
        assert!((r - 0.5).abs() < 0.02, "ratio {r}");
    }

    #[test]
    fn channel_sets_ballisticity_from_mfp() {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let f = BallisticFet::builder(Arc::new(band))
            .channel(
                Length::from_nanometers(100.0),
                Length::from_nanometers(300.0),
            )
            .build()
            .unwrap();
        assert!((f.ballisticity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn charging_feedback_reduces_current() {
        // A tiny insulator capacitance strengthens the self-consistent
        // push-back and must lower the on-current.
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let weak = BallisticFet::builder(Arc::new(band.clone()))
            .threshold_voltage(0.3)
            .gate_capacitance_per_length(5e-11)
            .build()
            .unwrap();
        let strong = BallisticFet::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .gate_capacitance_per_length(8e-10)
            .build()
            .unwrap();
        assert!(weak.ids(0.5, 0.5) < strong.ids(0.5, 0.5));
    }

    #[test]
    fn builder_validation() {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        assert!(BallisticFet::builder(Arc::new(band.clone()))
            .gate_capacitance_per_length(-1.0)
            .build()
            .is_err());
        assert!(BallisticFet::builder(Arc::new(band.clone()))
            .alpha_gate(1.5)
            .build()
            .is_err());
        assert!(BallisticFet::builder(Arc::new(band))
            .ballisticity(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn typed_api_matches_raw() {
        let f = cnt();
        let typed = f
            .drain_current(Voltage::from_volts(0.4), Voltage::from_volts(0.3))
            .amperes();
        assert_eq!(typed, f.ids(0.4, 0.3));
    }

    #[test]
    fn transfer_and_output_grids() {
        let f = cnt();
        let t = f.transfer(
            Voltage::from_volts(0.0),
            Voltage::from_volts(0.5),
            11,
            Voltage::from_volts(0.5),
        );
        assert_eq!(t.len(), 11);
        assert!(t.current().windows(2).all(|w| w[1] >= w[0] - 1e-15));
        let o = f.output(
            Voltage::ZERO,
            Voltage::from_volts(0.5),
            11,
            Voltage::from_volts(0.5),
        );
        assert!(o.current().windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;
    use carbon_spice::FetCurve;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn current_nonnegative_and_monotone_in_vgs(
            vg in 0.0_f64..0.8,
            vd in 0.05_f64..0.6,
        ) {
            let f = BallisticFet::cnt_fig1().unwrap();
            let i1 = f.ids(vg, vd);
            let i2 = f.ids(vg + 0.05, vd);
            prop_assert!(i1 >= 0.0);
            prop_assert!(i2 >= i1 * 0.999);
        }

        #[test]
        fn output_monotone_in_vds(vg in 0.2_f64..0.7, vd in 0.0_f64..0.5) {
            let f = BallisticFet::cnt_fig1().unwrap();
            let i1 = f.ids(vg, vd);
            let i2 = f.ids(vg, vd + 0.05);
            prop_assert!(i2 >= i1 * 0.999);
        }
    }
}

//! The CNT tunnel FET of Fig. 6: a gated PIN diode with a sub-thermal
//! subthreshold swing.
//!
//! The fabricated device (paper §IV, \[19\]) is a CNT-FET whose channel is
//! partially n-doped by PEI polymer, forming a p-i-n diode over a common
//! back gate:
//!
//! * **forward bias** — ordinary diode conduction, "the application of
//!   the back voltage is hardly modulating the current";
//! * **reverse bias** — band-to-band tunnelling at the gated junction:
//!   a very sharp turn-on as the gate goes negative, average swing
//!   83 mV/dec, individual intervals down to ~32 mV/dec, and an
//!   on-current density around 1 mA/µm — enormous by TFET standards.
//!
//! The reverse branch uses a Kane-type generation rate on the
//! gate-controlled band overlap `φ`:
//!
//! ```text
//! I_BTBT = A·φ²·exp(−B/φ),   φ(V_G) = a·softplus(V_knee − V_G)
//! ```
//!
//! The softplus knee plays the role of the thermal occupancy tail that
//! limits the steepest observable slope, and a leakage floor hides the
//! ultra-steep region below measurable currents — together reproducing
//! the "average 83, best 32" phenomenology.

use carbon_spice::FetCurve;
use carbon_units::{Length, Voltage};

use crate::{Fet, Polarity};

/// Gated PIN-diode CNT tunnel FET.
///
/// The drain terminal is the diode cathode: positive `V_DS` forward-
/// biases the diode, negative `V_DS` reverse-biases it and activates the
/// gated tunnel junction.
///
/// # Examples
///
/// ```
/// use carbon_devices::CntTfet;
/// use carbon_units::Voltage;
///
/// let tfet = CntTfet::fig6();
/// let curve = tfet.reverse_transfer(
///     Voltage::from_volts(-1.0),
///     Voltage::from_volts(0.2),
///     121,
///     Voltage::from_volts(-0.5),
/// );
/// let ss = curve.swing_between(1e-11, 1e-7).expect("turn-on in window");
/// assert!(ss < 100.0, "sub-100 average swing: {ss}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CntTfet {
    /// Kane prefactor, A.
    a_kane: f64,
    /// Kane exponent scale, eV.
    b_kane: f64,
    /// Gate-to-overlap control factor, eV/V.
    gate_eff: f64,
    /// Gate voltage where the bands begin to overlap, V.
    v_knee: f64,
    /// Softplus width emulating the thermal occupancy tail, V.
    knee_width: f64,
    /// Reverse leakage floor, A.
    i_leak: f64,
    /// Forward diode saturation current, A.
    i_s: f64,
    /// Forward diode ideality.
    n_diode: f64,
    width: Option<Length>,
}

impl CntTfet {
    /// The Fig. 6 device: calibrated so the reverse-bias transfer curve
    /// shows ≈ 83 mV/dec averaged over the turn-on decades, steeper
    /// individual intervals, and ~1.5 µA on-current (1 mA/µm over the
    /// ~1.5 nm tube).
    pub fn fig6() -> Self {
        Self {
            a_kane: 2.7e-5,
            b_kane: 0.30,
            gate_eff: 0.4,
            v_knee: -0.05,
            knee_width: 0.045,
            i_leak: 3e-12,
            i_s: 1e-13,
            n_diode: 1.5,
            width: Some(Length::from_nanometers(1.5)),
        }
    }

    /// Returns the device with a different gate-to-overlap control
    /// factor (eV/V) — the electrostatic-design knob of §IV ("if the
    /// electrostatic design is improved by implementing high-k
    /// dielectrics and segmented gates, an even better result should be
    /// obtainable").
    ///
    /// # Panics
    ///
    /// Panics unless `gate_eff` is in `(0, 1]`.
    pub fn with_gate_efficiency(mut self, gate_eff: f64) -> Self {
        assert!(
            gate_eff > 0.0 && gate_eff <= 1.0,
            "gate efficiency must be in (0, 1]"
        );
        self.gate_eff = gate_eff;
        self
    }

    /// Returns the device with a different turn-on knee width (V) — the
    /// thermal-occupancy-tail proxy that limits the steepest observable
    /// swing.
    ///
    /// # Panics
    ///
    /// Panics unless `knee_width` is positive.
    pub fn with_knee_width(mut self, knee_width: f64) -> Self {
        assert!(knee_width > 0.0, "knee width must be positive");
        self.knee_width = knee_width;
        self
    }

    /// Band overlap `φ(V_G)` in eV.
    fn overlap(&self, vg: f64) -> f64 {
        let x = (self.v_knee - vg) / self.knee_width;
        let soft = if x > 35.0 {
            self.v_knee - vg
        } else if x < -35.0 {
            self.knee_width * x.exp()
        } else {
            self.knee_width * x.exp().ln_1p()
        };
        self.gate_eff * soft
    }

    /// Reverse-branch band-to-band tunnelling current magnitude, A.
    fn i_btbt(&self, vg: f64) -> f64 {
        let phi = self.overlap(vg);
        if phi <= 0.0 {
            return 0.0;
        }
        self.a_kane * phi * phi * (-self.b_kane / phi).exp()
    }

    /// Transfer characteristic of the reverse-biased diode
    /// (`I` magnitude vs `V_G`), the curve plotted in Fig. 6(b).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn reverse_transfer(
        &self,
        vg_from: Voltage,
        vg_to: Voltage,
        n: usize,
        vd: Voltage,
    ) -> crate::IvCurve {
        assert!(
            vd.volts() < 0.0,
            "reverse branch needs a negative drain bias"
        );
        let grid = carbon_band::math::linspace(vg_from.volts(), vg_to.volts(), n);
        let current = grid
            .iter()
            .map(|&vg| self.ids(vg, vd.volts()).abs())
            .collect();
        crate::IvCurve::new(grid, current)
    }

    /// `true` when the gate modulation of the *forward* branch stays
    /// below `factor` across the given gate window — the paper's "hardly
    /// modulating" observation.
    pub fn forward_is_gate_insensitive(&self, vg_lo: Voltage, vg_hi: Voltage, factor: f64) -> bool {
        let vd = 0.4;
        let i_lo = self.ids(vg_lo.volts(), vd);
        let i_hi = self.ids(vg_hi.volts(), vd);
        let ratio = (i_lo / i_hi).max(i_hi / i_lo);
        ratio < factor
    }
}

impl carbon_spice::FetCurve for CntTfet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vds >= 0.0 {
            // Forward-biased diode; the gate barely matters.
            let vt = self.n_diode * 0.02585;
            let x = (vds / vt).min(60.0);
            self.i_s * (x.exp() - 1.0)
        } else {
            // Reverse: gated BTBT plus leakage; magnitude saturates
            // within a few kT of reverse bias.
            let drive = 1.0 - (vds / 0.05).exp();
            -(self.i_btbt(vgs) + self.i_leak) * drive
        }
    }
}

// Default scalar-loop kernels; the model is cheap and branchy, so the
// SoA layer's chunking alone is the win.
impl crate::batch::BatchEval for CntTfet {}

impl Fet for CntTfet {
    fn polarity(&self) -> Polarity {
        // Turn-on with negative gate voltage: hole-branch conduction.
        Polarity::PType
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_spice::FetCurve;

    fn curve() -> crate::IvCurve {
        CntTfet::fig6().reverse_transfer(
            Voltage::from_volts(-1.0),
            Voltage::from_volts(0.2),
            241,
            Voltage::from_volts(-0.5),
        )
    }

    #[test]
    fn average_swing_is_sub_100() {
        let ss = curve().swing_between(1e-11, 1e-7).unwrap();
        assert!(
            (60.0..105.0).contains(&ss),
            "average turn-on swing = {ss:.1} mV/dec (paper: 83)"
        );
    }

    #[test]
    fn best_interval_is_sub_thermal() {
        let best = curve().steepest_swing(1.3).unwrap();
        assert!(
            best < 55.0,
            "steepest interval = {best:.1} mV/dec must beat the 60 mV/dec limit"
        );
        assert!(best > 5.0, "but not absurdly steep: {best:.1}");
    }

    #[test]
    fn on_current_is_milliamp_per_micron_class() {
        let t = CntTfet::fig6();
        let i_on = t.ids(-1.0, -0.5).abs();
        let w = Fet::width(&t).unwrap();
        let density = carbon_units::Current::from_amperes(i_on).per_width(w);
        assert!(
            density.milliamps_per_micron() > 0.3,
            "density = {} mA/µm (paper: ~1)",
            density.milliamps_per_micron()
        );
    }

    #[test]
    fn forward_branch_hardly_gate_modulated() {
        let t = CntTfet::fig6();
        assert!(t.forward_is_gate_insensitive(
            Voltage::from_volts(-1.0),
            Voltage::from_volts(0.5),
            1.01
        ));
    }

    #[test]
    fn forward_branch_is_a_diode() {
        let t = CntTfet::fig6();
        let i1 = t.ids(0.0, 0.3);
        let i2 = t.ids(0.0, 0.4);
        // ~0.1 V / (1.5·26 mV) ≈ e^2.6 per 100 mV.
        assert!(i2 / i1 > 5.0, "exponential forward: {}", i2 / i1);
        assert!(i1 > 0.0);
    }

    #[test]
    fn reverse_off_state_is_leakage_floor() {
        let t = CntTfet::fig6();
        let i_off = t.ids(0.2, -0.5).abs();
        assert!(i_off < 2e-11, "off ≈ leakage: {i_off:.2e}");
    }

    #[test]
    fn on_off_ratio_spans_many_decades() {
        let c = curve();
        assert!(c.on_off_ratio() > 1e4, "ratio {:.1e}", c.on_off_ratio());
    }

    #[test]
    fn reverse_current_monotone_in_negative_gate() {
        let t = CntTfet::fig6();
        let mut prev = t.ids(0.2, -0.5).abs();
        for k in 1..60 {
            let vg = 0.2 - k as f64 * 0.02;
            let i = t.ids(vg, -0.5).abs();
            assert!(i >= prev * 0.999, "monotone at vg = {vg}");
            prev = i;
        }
    }

    #[test]
    fn reverse_drive_saturates_with_bias() {
        let t = CntTfet::fig6();
        let shallow = t.ids(-0.8, -0.2).abs();
        let deep = t.ids(-0.8, -0.6).abs();
        assert!(
            (deep / shallow - 1.0).abs() < 0.05,
            "bias-saturated: {}",
            deep / shallow
        );
    }
}

//! The experimentally observed graphene-nanoribbon FET: a gate-steered
//! linear resistor.
//!
//! The paper's central criticism of GNRs (Fig. 1(b) "real GNR",
//! Fig. 2(b)/(d)) is that fabricated ribbons turn *off* — sub-10 nm
//! devices reach `I_on/I_off = 10⁶` with 2 mA/µm drive — but never
//! *saturate*: the output characteristic stays essentially linear up to
//! volt-scale biases, and saturation appears only "at very high current
//! densities and/or high bias voltages (> 2 V)". This model captures
//! exactly that phenomenology:
//!
//! ```text
//! I_D = G(V_GS) · V_DS / (1 + |V_DS|/V_crit)
//! ```
//!
//! with a gate-controlled conductance `G` (softplus turn-on with a
//! configurable swing) and a saturation onset `V_crit` of several volts,
//! far outside the supply window of a scaled technology.

use carbon_units::{Length, Voltage};

use crate::{Fet, Polarity};

/// Non-saturating GNR FET.
///
/// # Examples
///
/// ```
/// use carbon_devices::{Fet, LinearGnrFet};
/// use carbon_units::Voltage;
///
/// let gnr = LinearGnrFet::sub10nm_fig1();
/// let out = gnr.output(
///     Voltage::ZERO,
///     Voltage::from_volts(0.5),
///     51,
///     Voltage::from_volts(1.0),
/// );
/// // No current saturation in the supply window.
/// assert!(out.saturation_figure() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGnrFet {
    /// Fully-on channel conductance, S.
    g_on: f64,
    /// Threshold voltage, V.
    vt: f64,
    /// Subthreshold swing, mV/dec.
    ss_mv_per_dec: f64,
    /// Gate overdrive at which `G` reaches `g_on`, V.
    v_on: f64,
    /// Bias scale where saturation would set in, V (several volts).
    v_crit: f64,
    polarity: Polarity,
    width: Option<Length>,
}

/// Error building a [`LinearGnrFet`] from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildLinearGnrError(String);

impl std::fmt::Display for BuildLinearGnrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid linear-GNR parameters: {}", self.0)
    }
}

impl std::error::Error for BuildLinearGnrError {}

impl LinearGnrFet {
    /// Creates an n-type device.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLinearGnrError`] unless `g_on > 0`, `v_on > 0`,
    /// `v_crit > 0`, and the swing is at or above the thermal limit.
    pub fn new(
        g_on: f64,
        vt: f64,
        ss_mv_per_dec: f64,
        v_on: f64,
        v_crit: f64,
    ) -> Result<Self, BuildLinearGnrError> {
        if !(g_on.is_finite() && g_on > 0.0) {
            return Err(BuildLinearGnrError(format!(
                "g_on must be positive, got {g_on}"
            )));
        }
        if !(v_on.is_finite() && v_on > 0.0 && v_crit.is_finite() && v_crit > 0.0) {
            return Err(BuildLinearGnrError(format!(
                "v_on and v_crit must be positive, got {v_on}, {v_crit}"
            )));
        }
        if ss_mv_per_dec < carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC {
            return Err(BuildLinearGnrError(format!(
                "swing {ss_mv_per_dec} mV/dec is below the thermal limit"
            )));
        }
        Ok(Self {
            g_on,
            vt,
            ss_mv_per_dec,
            v_on,
            v_crit,
            polarity: Polarity::NType,
            width: None,
        })
    }

    /// Converts the device to p-type.
    pub fn into_p_type(mut self) -> Self {
        self.polarity = Polarity::PType;
        self
    }

    /// Attaches a footprint width.
    pub fn with_width(mut self, w: Length) -> Self {
        self.width = Some(w);
        self
    }

    /// The sub-10 nm ribbon of the paper's §II (Wang et al.): ~2 mA/µm
    /// at `V_DS = 1 V` over a 5 nm width, `I_on/I_off ≈ 10⁶`, and no
    /// saturation below several volts.
    pub fn sub10nm_fig1() -> Self {
        let width = Length::from_nanometers(5.0);
        // 2 mA/µm × 5 nm = 10 µA at (1 V, 1 V); with V_crit = 4 V the
        // divisor at 1 V is 1.25 → G_on = 12.5 µS.
        Self::new(12.5e-6, 0.2, 120.0, 0.8, 4.0)
            .expect("fig1 preset parameters are valid")
            .with_width(width)
    }

    /// A Fig. 2(b) inverter device: conductance sized so the on-current
    /// at `(V_DD, V_DD) = (1 V, 1 V)` matches the saturating Fig. 2(a)
    /// nFET, making the two inverters of Fig. 2 directly comparable.
    ///
    /// Unlike the sharply-switching sub-10 nm ribbon of Fig. 1, the
    /// Fig. 2(b) device steers its conductance *gradually* across the
    /// supply window (a very soft 700 mV/dec effective swing) — that
    /// weak gate modulation on top of the linear output characteristic
    /// is what pins the inverter gain below one in Fig. 2(d).
    pub fn fig2_nfet() -> Self {
        let target = crate::AlphaPowerFet::fig2_nfet();
        let i_ref = carbon_spice::FetCurve::ids(&target, 1.0, 1.0);
        let v_crit = 4.0;
        let (vt, ss, v_on) = (0.0, 700.0, 1.2);
        // Invert I(1,1) = g_on·(soft(1)/v_on)·1/(1 + 1/v_crit) for g_on.
        let s = ss / 1e3 / std::f64::consts::LN_10;
        let soft1: f64 = s * ((1.0 - vt) / s).exp().ln_1p();
        let g_on = i_ref * (1.0 + 1.0 / v_crit) * v_on / soft1;
        Self::new(g_on, vt, ss, v_on, v_crit)
            .expect("fig2 preset parameters are valid")
            .with_width(Length::from_micrometers(1.0))
    }

    /// The matching p-type device of Fig. 2(b)/(d).
    pub fn fig2_pfet() -> Self {
        Self::fig2_nfet().into_p_type()
    }

    /// Returns a copy with threshold voltage `vt` — the scalar oracle
    /// for the [`ids_soa_vt`](Self::ids_soa_vt) parameter lane. Any
    /// finite `vt` is physical for this model ([`new`](Self::new) does
    /// not constrain it).
    pub fn with_vt(&self, vt: f64) -> Self {
        Self { vt, ..self.clone() }
    }

    /// Softplus scale of the gate turn-on. Vt-independent, hoisted by
    /// the SoA kernels.
    #[inline]
    fn softplus_scale(&self) -> f64 {
        let ss_v = self.ss_mv_per_dec / 1e3;
        ss_v / std::f64::consts::LN_10
    }

    #[inline]
    fn conductance_scaled(&self, s: f64, vt: f64, vgs: f64) -> f64 {
        let x = (vgs - vt) / s;
        let soft = if x > 35.0 {
            vgs - vt
        } else if x < -35.0 {
            s * x.exp()
        } else {
            s * x.exp().ln_1p()
        };
        self.g_on * (soft / self.v_on).min(1.0)
    }

    /// Gate-controlled conductance `G(V_GS)`, S.
    pub fn conductance(&self, vgs: Voltage) -> f64 {
        self.conductance_scaled(self.softplus_scale(), self.vt, vgs.volts())
    }

    #[inline]
    fn ids_ntype_scaled(&self, s: f64, vt: f64, vgs: f64, vds: f64) -> f64 {
        let g = self.conductance_scaled(s, vt, vgs);
        g * vds / (1.0 + vds.abs() / self.v_crit)
    }

    fn ids_ntype(&self, vgs: f64, vds: f64) -> f64 {
        self.ids_ntype_scaled(self.softplus_scale(), self.vt, vgs, vds)
    }

    /// SoA drain current over `vgs`/`vds` bias lanes **and** a `vt`
    /// parameter lane: `out[i]` is bit-identical to
    /// `self.with_vt(vt[i]).ids(vgs[i], vds[i])`. The threshold enters
    /// only through `(v_gs − v_t)` inside the conductance softplus, so
    /// one call covers N bias points × M Monte-Carlo threshold samples.
    ///
    /// # Panics
    ///
    /// Panics per [`carbon_spice::batch_lanes_match`] on mismatched
    /// lane lengths; empty lanes return immediately.
    pub fn ids_soa_vt(&self, vgs: &[f64], vds: &[f64], vt: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("vt", vt.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        let s = self.softplus_scale();
        match self.polarity {
            Polarity::NType => crate::batch::soa_loop_param(vgs, vds, vt, out, |g, d, t| {
                self.ids_ntype_scaled(s, t, g, d)
            }),
            Polarity::PType => crate::batch::soa_loop_param(vgs, vds, vt, out, |g, d, t| {
                -self.ids_ntype_scaled(s, t, -g, -d)
            }),
        }
    }
}

impl carbon_spice::FetCurve for LinearGnrFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        match self.polarity {
            Polarity::NType => self.ids_ntype(vgs, vds),
            Polarity::PType => -self.ids_ntype(-vgs, -vds),
        }
    }

    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        // One SoA kernel call for the 5-point stencil: the softplus
        // scale and polarity dispatch are hoisted once, bit-identical
        // to the composed default.
        crate::batch::eval_via_soa(self, vgs, vds)
    }
}

impl crate::batch::BatchEval for LinearGnrFet {
    fn ids_soa(&self, vgs: &[f64], vds: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        let s = self.softplus_scale();
        match self.polarity {
            Polarity::NType => crate::batch::soa_loop(vgs, vds, out, |g, d| {
                self.ids_ntype_scaled(s, self.vt, g, d)
            }),
            Polarity::PType => crate::batch::soa_loop(vgs, vds, out, |g, d| {
                -self.ids_ntype_scaled(s, self.vt, -g, -d)
            }),
        }
    }
}

impl Fet for LinearGnrFet {
    fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_spice::FetCurve;

    #[test]
    fn sub10nm_preset_hits_published_density() {
        let g = LinearGnrFet::sub10nm_fig1();
        let i = g.ids(1.0, 1.0);
        let w = Fet::width(&g).unwrap();
        let density = carbon_units::Current::from_amperes(i).per_width(w);
        assert!(
            (density.milliamps_per_micron() - 2.0).abs() < 0.3,
            "density = {} mA/µm",
            density.milliamps_per_micron()
        );
    }

    #[test]
    fn on_off_ratio_reaches_a_million() {
        let g = LinearGnrFet::sub10nm_fig1();
        let t = g.transfer(
            Voltage::from_volts(-0.6),
            Voltage::from_volts(1.0),
            161,
            Voltage::from_volts(1.0),
        );
        assert!(t.on_off_ratio() > 1e6, "on/off = {:.2e}", t.on_off_ratio());
    }

    #[test]
    fn no_saturation_in_the_supply_window() {
        // The headline failure: output conductance barely drops across
        // the full V_DS range.
        let g = LinearGnrFet::sub10nm_fig1();
        let o = g.output(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            101,
            Voltage::from_volts(1.0),
        );
        assert!(
            o.saturation_figure() < 1.8,
            "figure = {}",
            o.saturation_figure()
        );
    }

    #[test]
    fn saturation_only_appears_beyond_two_volts() {
        // Sweeping far past the supply window the V_crit roll-off
        // finally shows — matching "current saturation can only be
        // observed at ... high bias voltages (> 2 V)".
        let g = LinearGnrFet::sub10nm_fig1();
        let wide = g.output(
            Voltage::ZERO,
            Voltage::from_volts(8.0),
            161,
            Voltage::from_volts(1.0),
        );
        assert!(
            wide.saturation_figure() > 2.0,
            "figure = {}",
            wide.saturation_figure()
        );
    }

    #[test]
    fn fig2_device_matches_alpha_power_on_current() {
        let g = LinearGnrFet::fig2_nfet();
        let a = crate::AlphaPowerFet::fig2_nfet();
        let ig = g.ids(1.0, 1.0);
        let ia = a.ids(1.0, 1.0);
        assert!((ig / ia - 1.0).abs() < 0.02, "Ion ratio {}", ig / ia);
    }

    #[test]
    fn linear_region_resistance_is_gate_steered() {
        let g = LinearGnrFet::sub10nm_fig1();
        let r_lo = 0.05 / g.ids(0.5, 0.05);
        let r_hi = 0.05 / g.ids(1.0, 0.05);
        assert!(r_lo > r_hi, "more gate → less resistance");
        // Both behave ohmically at small bias.
        let lin_err = (g.ids(1.0, 0.1) / (2.0 * g.ids(1.0, 0.05)) - 1.0).abs();
        assert!(lin_err < 0.02, "ohmic: {lin_err}");
    }

    #[test]
    fn p_type_mirror() {
        let n = LinearGnrFet::sub10nm_fig1();
        let p = LinearGnrFet::sub10nm_fig1().into_p_type();
        assert!((n.ids(0.7, 0.4) + p.ids(-0.7, -0.4)).abs() < 1e-18);
    }

    #[test]
    fn negative_vds_is_antisymmetric() {
        let g = LinearGnrFet::sub10nm_fig1();
        assert!((g.ids(0.8, 0.3) + g.ids(0.8, -0.3)).abs() < 1e-18);
    }

    #[test]
    fn validation() {
        assert!(LinearGnrFet::new(0.0, 0.2, 100.0, 0.8, 4.0).is_err());
        assert!(LinearGnrFet::new(1e-5, 0.2, 100.0, -0.8, 4.0).is_err());
        assert!(LinearGnrFet::new(1e-5, 0.2, 100.0, 0.8, 0.0).is_err());
        assert!(LinearGnrFet::new(1e-5, 0.2, 20.0, 0.8, 4.0).is_err());
    }
}

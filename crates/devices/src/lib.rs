//! Compact transistor models for carbon (and reference) devices.
//!
//! This crate is the modelling core of the reproduction. Every I-V curve
//! in the paper comes from one of these models:
//!
//! * [`BallisticFet`] — the self-consistent top-of-barrier ballistic
//!   transport model (Natori / Rahman–Lundstrom) evaluated over any
//!   [`Band1d`](carbon_band::Band1d) ladder. With a CNT band it is the
//!   Fig. 1/Fig. 4 CNT-FET; with a GNR band it is the Fig. 1 GNR-FET —
//!   the paper's point being that the *same physics* predicts both.
//! * [`LinearGnrFet`] — the experimentally observed non-saturating GNR:
//!   a gate-steered linear resistor with an on/off ratio but no output
//!   saturation (Fig. 1(b) "real GNR", and the failing inverter of
//!   Fig. 2(b)/(d)).
//! * [`AlphaPowerFet`] — the Sakurai–Newton alpha-power MOSFET, the
//!   "well-behaved FET with current saturation" of Fig. 2(a)/(c), also
//!   used for the Intel-trigate reference point of §III.E.
//! * [`CntTfet`] — the gated PIN-diode tunnel FET of Fig. 6 with its
//!   sub-thermal swing.
//! * [`SeriesResistance`] — wraps any model with source/drain access
//!   resistance, reproducing Fig. 4's degradation, plus the
//!   transfer-length contact-resistance scaling of §III.B.
//! * [`metrics`] — SS/DIBL/Ion extraction used by every experiment.
//!
//! All models implement [`Fet`] (typed, quantity-based API) and
//! [`carbon_spice::FetCurve`] (raw volts/amps API), so a model swept in a
//! device experiment can be dropped into a circuit unchanged.

#![deny(missing_docs)]

pub mod alpha_power;
pub mod ballistic;
pub mod batch;
pub mod linear_gnr;
pub mod metrics;
pub mod series;
pub mod table_model;
pub mod tfet;

pub use alpha_power::AlphaPowerFet;
pub use ballistic::BallisticFet;
pub use batch::BatchEval;
pub use linear_gnr::LinearGnrFet;
pub use metrics::IvCurve;
pub use series::SeriesResistance;
pub use table_model::TableFet;
pub use tfet::CntTfet;

use carbon_units::{Current, Length, Voltage};

/// Channel polarity of a FET model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Electron-conducting channel; positive `V_GS` turns it on.
    NType,
    /// Hole-conducting channel; negative `V_GS` turns it on.
    PType,
}

/// A transistor compact model.
///
/// `Fet` extends [`carbon_spice::FetCurve`] (which supplies the raw
/// `ids(vgs, vds)` evaluation used inside circuit simulation) and
/// [`BatchEval`] (the structure-of-arrays batch layer — the defaults
/// give every model a correct, bit-identical batched path) with a
/// typed, quantity-based API for device-level experiments.
pub trait Fet: BatchEval + Send + Sync {
    /// Channel polarity.
    fn polarity(&self) -> Polarity;

    /// Effective electrical width used to express currents per micron,
    /// if the model has one (1-D channels report their footprint width).
    fn width(&self) -> Option<Length> {
        None
    }

    /// Drain current at the given bias.
    fn drain_current(&self, vgs: Voltage, vds: Voltage) -> Current {
        Current::from_amperes(self.ids(vgs.volts(), vds.volts()))
    }

    /// Transfer characteristic `I_D(V_GS)` at fixed `V_DS` over a
    /// uniform grid of `n ≥ 2` points.
    ///
    /// Bias points are independent, so the grid goes through the SoA
    /// batch layer ([`batch::par_ids_soa`]) in fixed chunks on the
    /// runtime executor: identical results at any thread count, and
    /// bit-identical to per-point scalar `ids` calls; runs inline when
    /// called from inside another parallel region.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    fn transfer(&self, vgs_from: Voltage, vgs_to: Voltage, n: usize, vds: Voltage) -> IvCurve {
        let grid = carbon_band::math::linspace(vgs_from.volts(), vgs_to.volts(), n);
        let vds_lane = vec![vds.volts(); grid.len()];
        let current = batch::par_ids_soa(self, &grid, &vds_lane);
        IvCurve::new(grid, current)
    }

    /// Output characteristic `I_D(V_DS)` at fixed `V_GS` over a uniform
    /// grid of `n ≥ 2` points.
    ///
    /// Evaluated through the batch layer, like
    /// [`transfer`](Self::transfer).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    fn output(&self, vds_from: Voltage, vds_to: Voltage, n: usize, vgs: Voltage) -> IvCurve {
        let grid = carbon_band::math::linspace(vds_from.volts(), vds_to.volts(), n);
        let vgs_lane = vec![vgs.volts(); grid.len()];
        let current = batch::par_ids_soa(self, &vgs_lane, &grid);
        IvCurve::new(grid, current)
    }
}

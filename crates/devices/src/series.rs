//! Source/drain series resistance: the Fig. 4 experiment and the §III.B
//! contact-resistance discussion.
//!
//! [`SeriesResistance`] wraps any [`Fet`] with access resistors `R_S` and
//! `R_D` and solves the implicit loop
//!
//! ```text
//! I = f(V_GS − I·R_S,  V_DS − I·(R_S + R_D))
//! ```
//!
//! for the terminal current. Fig. 4 is this wrapper with 50 kΩ per
//! contact around the ideal CNT-FET: the current drops *and the shape
//! linearizes*, which is the point the paper makes about contact
//! engineering.
//!
//! [`cnt_contact_resistance`] models the §III.B observation (Franklin &
//! Chen) that CNT contact resistance rises as the contact length shrinks
//! below the current-transfer length, with the `h/4q² ≈ 6.45 kΩ` quantum
//! bound and the paper's "as low as 11 kΩ" total series resistance as
//! reference points.

use std::sync::Arc;

use carbon_band::math::brent;
use carbon_units::consts::R_QUANTUM_CNT;
use carbon_units::{Energy, Length, Resistance, Temperature};

use crate::{Fet, Polarity};

/// A FET with source/drain access resistance.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use carbon_devices::{BallisticFet, Fet, SeriesResistance};
/// use carbon_units::{Resistance, Voltage};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
/// let ideal = Arc::new(BallisticFet::cnt_fig1()?);
/// let contacted = SeriesResistance::symmetric(ideal.clone(), Resistance::from_kilohms(50.0));
/// let v = Voltage::from_volts(0.5);
/// assert!(contacted.drain_current(v, v).amperes() < ideal.drain_current(v, v).amperes());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SeriesResistance {
    inner: Arc<dyn Fet>,
    rs: f64,
    rd: f64,
}

impl std::fmt::Debug for SeriesResistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesResistance")
            .field("rs_ohm", &self.rs)
            .field("rd_ohm", &self.rd)
            .finish()
    }
}

impl SeriesResistance {
    /// Wraps `inner` with separate source and drain resistances.
    ///
    /// # Panics
    ///
    /// Panics if either resistance is negative or non-finite.
    pub fn new(inner: Arc<dyn Fet>, rs: Resistance, rd: Resistance) -> Self {
        assert!(
            rs.ohms().is_finite() && rs.ohms() >= 0.0,
            "source resistance must be ≥ 0"
        );
        assert!(
            rd.ohms().is_finite() && rd.ohms() >= 0.0,
            "drain resistance must be ≥ 0"
        );
        Self {
            inner,
            rs: rs.ohms(),
            rd: rd.ohms(),
        }
    }

    /// Equal resistance on both contacts — the Fig. 4 configuration.
    pub fn symmetric(inner: Arc<dyn Fet>, r_each: Resistance) -> Self {
        Self::new(inner, r_each, r_each)
    }

    /// Total series resistance `R_S + R_D`.
    pub fn total_resistance(&self) -> Resistance {
        Resistance::from_ohms(self.rs + self.rd)
    }

    fn solve(&self, vgs: f64, vds: f64) -> f64 {
        if self.rs == 0.0 && self.rd == 0.0 {
            return self.inner.ids(vgs, vds);
        }
        let r_tot = self.rs + self.rd;
        let unloaded = self.inner.ids(vgs, vds);
        if unloaded == 0.0 {
            return 0.0;
        }
        // The residual h(i) = f(internal biases) − i is strictly
        // decreasing in i and changes sign between 0 and the unloaded
        // current (the load only ever reduces |I|).
        let h = |i: f64| self.inner.ids(vgs - i * self.rs, vds - i * r_tot) - i;
        let (lo, hi) = if unloaded > 0.0 {
            (0.0, unloaded)
        } else {
            (unloaded, 0.0)
        };
        match brent(h, lo, hi, 1e-15 + 1e-9 * unloaded.abs()) {
            Ok(i) => i,
            // h(lo)·h(hi) > 0 can only happen from roundoff at the
            // endpoints; the unloaded current is then the fixed point.
            Err(_) => unloaded,
        }
    }
}

impl carbon_spice::FetCurve for SeriesResistance {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.solve(vgs, vds)
    }
}

// The per-lane Newton/Brent load solve leaves nothing to hoist; the
// default scalar-loop kernels are already the bit-identity oracle.
impl crate::batch::BatchEval for SeriesResistance {}

impl Fet for SeriesResistance {
    fn polarity(&self) -> Polarity {
        self.inner.polarity()
    }

    fn width(&self) -> Option<Length> {
        self.inner.width()
    }
}

/// Contact resistance of one metal-CNT contact versus contact length,
/// using the transfer-length closure
/// `R_c(L_c) = R_c∞ · coth(L_c / L_T)`:
/// long contacts approach `R_c∞`, short contacts diverge as
/// `R_c∞·L_T/L_c` — the §III.B "dependence on the metal length that
/// covers the CNT ... in the sub 100 nm regime".
///
/// # Panics
///
/// Panics if any length or resistance is non-positive.
pub fn cnt_contact_resistance(
    contact_length: Length,
    rc_long: Resistance,
    transfer_length: Length,
) -> Resistance {
    assert!(
        contact_length.meters() > 0.0,
        "contact length must be positive"
    );
    assert!(
        transfer_length.meters() > 0.0,
        "transfer length must be positive"
    );
    assert!(
        rc_long.ohms() > 0.0,
        "long-contact resistance must be positive"
    );
    let x = contact_length.meters() / transfer_length.meters();
    Resistance::from_ohms(rc_long.ohms() / x.tanh())
}

/// Total two-contact series resistance of a CNT-FET: the `h/4q²` quantum
/// resistance plus two length-dependent contacts. With the Franklin–Chen
/// calibration (`R_c∞ ≈ 2.3 kΩ`, `L_T ≈ 20 nm`) a device with 20 nm
/// contacts lands at the paper's "as low as 11 kΩ".
pub fn cnt_series_resistance(contact_length: Length) -> Resistance {
    let rc = cnt_contact_resistance(
        contact_length,
        Resistance::from_kilohms(2.3),
        Length::from_nanometers(20.0),
    );
    Resistance::from_ohms(R_QUANTUM_CNT + 2.0 * rc.ohms())
}

/// Effective resistance of one metal-CNT Schottky contact with barrier
/// height `phi_b` at temperature `t`, modelled as thermionic emission
/// over the barrier:
///
/// ```text
/// R_c(φ_b) = (R_q/2) · exp(φ_b / kT)
/// ```
///
/// §III.B: "in an ideal situation the channel contact would consist of
/// metal and form a low barrier Schottky-contact to the channel" — a
/// zero-barrier contact costs only the (unavoidable) quantum resistance
/// share; every 60 meV of barrier multiplies the access resistance by
/// ~10 at room temperature, which is why contact metallurgy dominates
/// the §III.B discussion.
pub fn schottky_contact_resistance(phi_b: Energy, t: Temperature) -> Resistance {
    let kt = t.thermal_energy().joules();
    let x = (phi_b.joules() / kt).clamp(-50.0, 50.0);
    Resistance::from_ohms(0.5 * R_QUANTUM_CNT * x.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaPowerFet, BallisticFet};
    use carbon_spice::FetCurve;
    use carbon_units::Voltage;

    fn ideal_cnt() -> Arc<dyn Fet> {
        Arc::new(BallisticFet::cnt_fig1().unwrap())
    }

    #[test]
    fn fig4_contacts_reduce_current() {
        let ideal = ideal_cnt();
        let loaded = SeriesResistance::symmetric(ideal.clone(), Resistance::from_kilohms(50.0));
        let i0 = ideal.ids(0.5, 0.5);
        let i1 = loaded.ids(0.5, 0.5);
        assert!(i1 < i0 * 0.75, "loaded {i1:.3e} vs ideal {i0:.3e}");
        assert!(i1 > 0.0);
    }

    #[test]
    fn fig4_contacts_linearize_the_output() {
        // The paper: "the shape of the I-V has changed to a more linear
        // characteristic with less saturation".
        let ideal = ideal_cnt();
        let loaded = SeriesResistance::symmetric(ideal.clone(), Resistance::from_kilohms(50.0));
        let vg = Voltage::from_volts(0.5);
        let sat_ideal = ideal
            .output(Voltage::ZERO, Voltage::from_volts(0.5), 51, vg)
            .saturation_figure();
        let sat_loaded = loaded
            .output(Voltage::ZERO, Voltage::from_volts(0.5), 51, vg)
            .saturation_figure();
        assert!(
            sat_loaded < sat_ideal * 0.7,
            "ideal {sat_ideal:.2} vs loaded {sat_loaded:.2}"
        );
    }

    #[test]
    fn zero_resistance_is_identity() {
        let ideal = ideal_cnt();
        let wrapped = SeriesResistance::symmetric(ideal.clone(), Resistance::from_ohms(0.0));
        assert_eq!(wrapped.ids(0.4, 0.3), ideal.ids(0.4, 0.3));
    }

    #[test]
    fn ohmic_limit_dominated_by_resistors() {
        // A huge series resistance turns the device into ≈ V/R.
        let ideal = ideal_cnt();
        let r = Resistance::from_kilohms(5000.0);
        let loaded = SeriesResistance::symmetric(ideal, r);
        let i = loaded.ids(0.5, 0.5);
        let ohmic = 0.5 / (2.0 * r.ohms());
        assert!(i < ohmic * 1.05, "i = {i:.3e} ≤ V/R = {ohmic:.3e}");
        assert!(i > ohmic * 0.3);
    }

    #[test]
    fn works_for_p_type() {
        let p = Arc::new(AlphaPowerFet::fig2_pfet());
        let loaded = SeriesResistance::symmetric(p.clone(), Resistance::from_kilohms(20.0));
        let i0 = p.ids(-1.0, -1.0);
        let i1 = loaded.ids(-1.0, -1.0);
        assert!(i0 < 0.0 && i1 < 0.0);
        assert!(i1.abs() < i0.abs());
        assert_eq!(loaded.polarity(), Polarity::PType);
    }

    #[test]
    fn asymmetric_contacts() {
        let ideal = ideal_cnt();
        let src_only = SeriesResistance::new(
            ideal.clone(),
            Resistance::from_kilohms(50.0),
            Resistance::from_ohms(1e-3),
        );
        let drn_only = SeriesResistance::new(
            ideal,
            Resistance::from_ohms(1e-3),
            Resistance::from_kilohms(50.0),
        );
        // Source degeneration also debiases the gate, so it hurts more.
        let i_src = src_only.ids(0.5, 0.5);
        let i_drn = drn_only.ids(0.5, 0.5);
        assert!(i_src < i_drn, "src {i_src:.3e} vs drn {i_drn:.3e}");
    }

    #[test]
    fn contact_resistance_length_scaling() {
        let long = cnt_contact_resistance(
            Length::from_nanometers(200.0),
            Resistance::from_kilohms(2.3),
            Length::from_nanometers(20.0),
        );
        let short = cnt_contact_resistance(
            Length::from_nanometers(10.0),
            Resistance::from_kilohms(2.3),
            Length::from_nanometers(20.0),
        );
        assert!(
            (long.kilohms() - 2.3).abs() < 0.01,
            "long contact saturates"
        );
        assert!(
            short.kilohms() > 4.0,
            "short contact degrades: {}",
            short.kilohms()
        );
    }

    #[test]
    fn eleven_kilohm_claim() {
        // §III.B: "the overall serial resistance of a single CNT-FET has
        // been shown to be as low as 11 kOhm" for a 20 nm contact device.
        let total = cnt_series_resistance(Length::from_nanometers(20.0));
        assert!(
            (total.kilohms() - 11.0).abs() < 1.5,
            "total = {} kΩ",
            total.kilohms()
        );
        // And the floor is the quantum resistance.
        let best = cnt_series_resistance(Length::from_micrometers(10.0));
        assert!(best.ohms() > R_QUANTUM_CNT);
        assert!((best.kilohms() - (R_QUANTUM_CNT * 1e-3 + 4.6)).abs() < 0.1);
    }

    #[test]
    fn schottky_barrier_costs_a_decade_per_60mev() {
        let t = Temperature::room();
        let r0 = schottky_contact_resistance(Energy::ZERO, t);
        assert!((r0.ohms() - R_QUANTUM_CNT / 2.0).abs() < 1.0, "ohmic limit");
        let r60 = schottky_contact_resistance(Energy::from_electron_volts(0.0596), t);
        assert!(
            (r60.ohms() / r0.ohms() - 10.0).abs() < 0.5,
            "decade per 60 meV"
        );
        let r300 = schottky_contact_resistance(Energy::from_electron_volts(0.3), t);
        assert!(r300.kilohms() > 1e5, "a 0.3 eV barrier is catastrophic");
    }

    #[test]
    fn schottky_contact_improves_when_hot() {
        let phi = Energy::from_electron_volts(0.2);
        let cold = schottky_contact_resistance(phi, Temperature::from_kelvin(250.0));
        let hot = schottky_contact_resistance(phi, Temperature::from_kelvin(400.0));
        assert!(hot < cold, "thermionic emission eases with temperature");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn contact_model_rejects_zero_length() {
        let _ = cnt_contact_resistance(
            Length::from_nanometers(0.0),
            Resistance::from_kilohms(2.3),
            Length::from_nanometers(20.0),
        );
    }
}

//! Grid-sampled table models: evaluate an expensive compact model once
//! on a bias grid, then serve lookups by bilinear interpolation.
//!
//! The self-consistent ballistic solver costs a root-find with nested
//! quadrature per bias point — fine for I-V sweeps, wasteful inside a
//! transient simulation that calls `ids` hundreds of thousands of
//! times. [`TableFet`] is the standard SPICE answer (a table model):
//! sample once, interpolate forever. Accuracy is set by the grid pitch;
//! the tests bound the interpolation error against the live model.

use std::sync::Arc;

use carbon_units::Length;

use crate::{Fet, Polarity};

/// A FET compact model tabulated on a uniform `(V_GS, V_DS)` grid.
#[derive(Clone)]
pub struct TableFet {
    vgs_lo: f64,
    vgs_hi: f64,
    vds_lo: f64,
    vds_hi: f64,
    n_vgs: usize,
    n_vds: usize,
    /// Row-major `[i_vgs][i_vds]` samples.
    data: Arc<Vec<f64>>,
    polarity: Polarity,
    width: Option<Length>,
}

impl std::fmt::Debug for TableFet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableFet")
            .field("vgs", &(self.vgs_lo, self.vgs_hi, self.n_vgs))
            .field("vds", &(self.vds_lo, self.vds_hi, self.n_vds))
            .finish()
    }
}

/// Error building a [`TableFet`] from an invalid grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildTableError(String);

impl std::fmt::Display for BuildTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid table model grid: {}", self.0)
    }
}

impl std::error::Error for BuildTableError {}

impl TableFet {
    /// Tabulates `inner` on an `n_vgs × n_vds` grid spanning the given
    /// bias windows.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] for degenerate windows or grids with
    /// fewer than 4 points per axis.
    pub fn sample(
        inner: &dyn Fet,
        vgs_window: (f64, f64),
        vds_window: (f64, f64),
        n_vgs: usize,
        n_vds: usize,
    ) -> Result<Self, BuildTableError> {
        let (vgs_lo, vgs_hi) = vgs_window;
        let (vds_lo, vds_hi) = vds_window;
        if !(vgs_hi > vgs_lo && vds_hi > vds_lo) {
            return Err(BuildTableError(format!(
                "windows must be non-degenerate, got vgs {vgs_lo}..{vgs_hi}, vds {vds_lo}..{vds_hi}"
            )));
        }
        if n_vgs < 4 || n_vds < 4 {
            return Err(BuildTableError(format!(
                "need at least 4 grid points per axis, got {n_vgs}×{n_vds}"
            )));
        }
        // Each grid node is an independent (often expensive) model
        // evaluation — fan the grid out on the runtime executor.
        let data = carbon_runtime::par_map(n_vgs * n_vds, |k| {
            let (i, j) = (k / n_vds, k % n_vds);
            let vgs = vgs_lo + (vgs_hi - vgs_lo) * i as f64 / (n_vgs - 1) as f64;
            let vds = vds_lo + (vds_hi - vds_lo) * j as f64 / (n_vds - 1) as f64;
            inner.ids(vgs, vds)
        });
        Ok(Self {
            vgs_lo,
            vgs_hi,
            vds_lo,
            vds_hi,
            n_vgs,
            n_vds,
            data: Arc::new(data),
            polarity: inner.polarity(),
            width: inner.width(),
        })
    }

    #[inline]
    fn lookup(&self, vgs: f64, vds: f64) -> f64 {
        // Clamp into the sampled window (flat extrapolation — circuits
        // excursion slightly past the rails during Newton iterations).
        let x = ((vgs - self.vgs_lo) / (self.vgs_hi - self.vgs_lo) * (self.n_vgs - 1) as f64)
            .clamp(0.0, (self.n_vgs - 1) as f64);
        let y = ((vds - self.vds_lo) / (self.vds_hi - self.vds_lo) * (self.n_vds - 1) as f64)
            .clamp(0.0, (self.n_vds - 1) as f64);
        let i0 = (x.floor() as usize).min(self.n_vgs - 2);
        let j0 = (y.floor() as usize).min(self.n_vds - 2);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let at = |i: usize, j: usize| self.data[i * self.n_vds + j];
        at(i0, j0) * (1.0 - fx) * (1.0 - fy)
            + at(i0 + 1, j0) * fx * (1.0 - fy)
            + at(i0, j0 + 1) * (1.0 - fx) * fy
            + at(i0 + 1, j0 + 1) * fx * fy
    }
}

impl carbon_spice::FetCurve for TableFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.lookup(vgs, vds)
    }
}

impl Fet for TableFet {
    fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaPowerFet, BallisticFet};
    use carbon_spice::FetCurve;

    #[test]
    fn interpolates_alpha_power_closely() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (-0.2, 1.2), (-0.2, 1.2), 71, 71).unwrap();
        for vg in [0.0, 0.33, 0.61, 0.97] {
            for vd in [0.05, 0.4, 0.77, 1.1] {
                let exact = inner.ids(vg, vd);
                let approx = table.ids(vg, vd);
                let tol = 0.03 * exact.abs().max(1e-6);
                assert!(
                    (exact - approx).abs() < tol,
                    "({vg}, {vd}): {exact:.4e} vs {approx:.4e}"
                );
            }
        }
    }

    #[test]
    fn matches_exactly_on_grid_nodes() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 11, 11).unwrap();
        for i in 0..11 {
            let v = i as f64 / 10.0;
            assert_eq!(table.ids(v, v), inner.ids(v, v));
        }
    }

    #[test]
    fn clamps_outside_the_window() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 11, 11).unwrap();
        assert_eq!(table.ids(2.0, 0.5), table.ids(1.0, 0.5));
        assert_eq!(table.ids(0.5, -1.0), table.ids(0.5, 0.0));
    }

    #[test]
    fn preserves_metadata() {
        let inner = AlphaPowerFet::fig2_pfet();
        let table = TableFet::sample(&inner, (-1.2, 0.2), (-1.2, 0.2), 11, 11).unwrap();
        assert_eq!(table.polarity(), Polarity::PType);
        assert_eq!(Fet::width(&table), Fet::width(&inner));
    }

    #[test]
    fn tabulated_ballistic_tracks_live_model() {
        let inner = BallisticFet::cnt_fig1().unwrap();
        let table = TableFet::sample(&inner, (-0.1, 0.7), (-0.1, 0.7), 33, 33).unwrap();
        for (vg, vd) in [(0.3, 0.3), (0.5, 0.5), (0.45, 0.12)] {
            let exact = inner.ids(vg, vd);
            let approx = table.ids(vg, vd);
            assert!(
                (exact - approx).abs() < 0.05 * exact.abs().max(1e-9),
                "({vg}, {vd})"
            );
        }
    }

    #[test]
    fn grid_validation() {
        let inner = AlphaPowerFet::fig2_nfet();
        assert!(TableFet::sample(&inner, (1.0, 0.0), (0.0, 1.0), 11, 11).is_err());
        assert!(TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 3, 11).is_err());
    }
}

//! Grid-sampled table models: evaluate an expensive compact model once
//! on a bias grid, then serve lookups by bilinear interpolation.
//!
//! The self-consistent ballistic solver costs a root-find with nested
//! quadrature per bias point — fine for I-V sweeps, wasteful inside a
//! transient simulation that calls `ids` hundreds of thousands of
//! times. [`TableFet`] is the standard SPICE answer (a table model):
//! sample once, interpolate forever. Accuracy is set by the grid pitch;
//! the tests bound the interpolation error against the live model.

use std::sync::Arc;

use carbon_units::Length;

use crate::{Fet, Polarity};

/// A FET compact model tabulated on a uniform `(V_GS, V_DS)` grid.
#[derive(Clone)]
pub struct TableFet {
    vgs_lo: f64,
    vgs_hi: f64,
    vds_lo: f64,
    vds_hi: f64,
    n_vgs: usize,
    n_vds: usize,
    /// Row-major `[i_vgs][i_vds]` samples.
    data: Arc<Vec<f64>>,
    polarity: Polarity,
    width: Option<Length>,
}

impl std::fmt::Debug for TableFet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableFet")
            .field("vgs", &(self.vgs_lo, self.vgs_hi, self.n_vgs))
            .field("vds", &(self.vds_lo, self.vds_hi, self.n_vds))
            .finish()
    }
}

/// Error building a [`TableFet`] from an invalid grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildTableError(String);

impl std::fmt::Display for BuildTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid table model grid: {}", self.0)
    }
}

impl std::error::Error for BuildTableError {}

impl TableFet {
    /// Tabulates `inner` on an `n_vgs × n_vds` grid spanning the given
    /// bias windows.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] for degenerate windows or grids with
    /// fewer than 4 points per axis.
    pub fn sample(
        inner: &dyn Fet,
        vgs_window: (f64, f64),
        vds_window: (f64, f64),
        n_vgs: usize,
        n_vds: usize,
    ) -> Result<Self, BuildTableError> {
        let (vgs_lo, vgs_hi) = vgs_window;
        let (vds_lo, vds_hi) = vds_window;
        if !(vgs_hi > vgs_lo && vds_hi > vds_lo) {
            return Err(BuildTableError(format!(
                "windows must be non-degenerate, got vgs {vgs_lo}..{vgs_hi}, vds {vds_lo}..{vds_hi}"
            )));
        }
        if n_vgs < 4 || n_vds < 4 {
            return Err(BuildTableError(format!(
                "need at least 4 grid points per axis, got {n_vgs}×{n_vds}"
            )));
        }
        // Each grid row is an independent batch of (often expensive)
        // model evaluations — fan rows out on the runtime executor and
        // evaluate each through the inner model's SoA kernel. The grid
        // expressions are unchanged and the kernel is bit-identical to
        // scalar `ids`, so the table matches the per-point original.
        let rows = carbon_runtime::par_map(n_vgs, |i| {
            let vgs = vgs_lo + (vgs_hi - vgs_lo) * i as f64 / (n_vgs - 1) as f64;
            let vgs_lane = vec![vgs; n_vds];
            let vds_lane: Vec<f64> = (0..n_vds)
                .map(|j| vds_lo + (vds_hi - vds_lo) * j as f64 / (n_vds - 1) as f64)
                .collect();
            let mut row = vec![0.0; n_vds];
            inner.ids_soa(&vgs_lane, &vds_lane, &mut row);
            row
        });
        let data = rows.concat();
        Ok(Self {
            vgs_lo,
            vgs_hi,
            vds_lo,
            vds_hi,
            n_vgs,
            n_vds,
            data: Arc::new(data),
            polarity: inner.polarity(),
            width: inner.width(),
        })
    }

    #[inline]
    fn lookup(&self, vgs: f64, vds: f64) -> f64 {
        // Clamp into the sampled window (flat extrapolation — circuits
        // excursion slightly past the rails during Newton iterations).
        let x = ((vgs - self.vgs_lo) / (self.vgs_hi - self.vgs_lo) * (self.n_vgs - 1) as f64)
            .clamp(0.0, (self.n_vgs - 1) as f64);
        let y = ((vds - self.vds_lo) / (self.vds_hi - self.vds_lo) * (self.n_vds - 1) as f64)
            .clamp(0.0, (self.n_vds - 1) as f64);
        let i0 = (x.floor() as usize).min(self.n_vgs - 2);
        let j0 = (y.floor() as usize).min(self.n_vds - 2);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let at = |i: usize, j: usize| self.data[i * self.n_vds + j];
        at(i0, j0) * (1.0 - fx) * (1.0 - fy)
            + at(i0 + 1, j0) * fx * (1.0 - fy)
            + at(i0, j0 + 1) * (1.0 - fx) * fy
            + at(i0 + 1, j0 + 1) * fx * fy
    }
}

impl carbon_spice::FetCurve for TableFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.lookup(vgs, vds)
    }

    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[("bias", bias.len()), ("out", out.len())]) {
            return;
        }
        // Hoist the grid geometry out of the loop. Every expression
        // mirrors `lookup` exactly (same operands, same order), so each
        // output stays bit-identical to the scalar path — the batch only
        // shares the field loads and window subtractions.
        let (geom, data) = (self.hoisted_geometry(), &self.data[..]);
        for (o, &(vgs, vds)) in out.iter_mut().zip(bias) {
            *o = geom.lookup(data, vgs, vds);
        }
    }

    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        // One batched lookup for the value and the four-point central
        // difference stencil, via the shared SoA routing (bit-identical
        // to the composed default).
        crate::batch::eval_via_soa(self, vgs, vds)
    }
}

/// The clamp/index geometry of a [`TableFet`] grid, hoisted once per
/// batch so the lane loops only do interpolation arithmetic.
#[derive(Clone, Copy)]
struct HoistedGeometry {
    vgs_lo: f64,
    vds_lo: f64,
    wx: f64,
    wy: f64,
    gx: f64,
    gy: f64,
    i_max: usize,
    j_max: usize,
    n_vds: usize,
}

impl HoistedGeometry {
    /// Bilinear lookup mirroring [`TableFet::lookup`] operand-for-
    /// operand (same order, same clamps), so results are bit-identical
    /// to the scalar path.
    #[inline]
    fn lookup(&self, data: &[f64], vgs: f64, vds: f64) -> f64 {
        let x = ((vgs - self.vgs_lo) / self.wx * self.gx).clamp(0.0, self.gx);
        let y = ((vds - self.vds_lo) / self.wy * self.gy).clamp(0.0, self.gy);
        let i0 = (x.floor() as usize).min(self.i_max);
        let j0 = (y.floor() as usize).min(self.j_max);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let at = |i: usize, j: usize| data[i * self.n_vds + j];
        at(i0, j0) * (1.0 - fx) * (1.0 - fy)
            + at(i0 + 1, j0) * fx * (1.0 - fy)
            + at(i0, j0 + 1) * (1.0 - fx) * fy
            + at(i0 + 1, j0 + 1) * fx * fy
    }
}

impl TableFet {
    #[inline]
    fn hoisted_geometry(&self) -> HoistedGeometry {
        HoistedGeometry {
            vgs_lo: self.vgs_lo,
            vds_lo: self.vds_lo,
            wx: self.vgs_hi - self.vgs_lo,
            wy: self.vds_hi - self.vds_lo,
            gx: (self.n_vgs - 1) as f64,
            gy: (self.n_vds - 1) as f64,
            i_max: self.n_vgs - 2,
            j_max: self.n_vds - 2,
            n_vds: self.n_vds,
        }
    }
}

impl crate::batch::BatchEval for TableFet {
    fn ids_soa(&self, vgs: &[f64], vds: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        let (geom, data) = (self.hoisted_geometry(), &self.data[..]);
        crate::batch::soa_loop(vgs, vds, out, |g, d| geom.lookup(data, g, d));
    }
}

impl Fet for TableFet {
    fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaPowerFet, BallisticFet};
    use carbon_spice::FetCurve;

    #[test]
    fn interpolates_alpha_power_closely() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (-0.2, 1.2), (-0.2, 1.2), 71, 71).unwrap();
        for vg in [0.0, 0.33, 0.61, 0.97] {
            for vd in [0.05, 0.4, 0.77, 1.1] {
                let exact = inner.ids(vg, vd);
                let approx = table.ids(vg, vd);
                let tol = 0.03 * exact.abs().max(1e-6);
                assert!(
                    (exact - approx).abs() < tol,
                    "({vg}, {vd}): {exact:.4e} vs {approx:.4e}"
                );
            }
        }
    }

    #[test]
    fn matches_exactly_on_grid_nodes() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 11, 11).unwrap();
        for i in 0..11 {
            let v = i as f64 / 10.0;
            assert_eq!(table.ids(v, v), inner.ids(v, v));
        }
    }

    #[test]
    fn clamps_outside_the_window() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 11, 11).unwrap();
        assert_eq!(table.ids(2.0, 0.5), table.ids(1.0, 0.5));
        assert_eq!(table.ids(0.5, -1.0), table.ids(0.5, 0.0));
    }

    #[test]
    fn preserves_metadata() {
        let inner = AlphaPowerFet::fig2_pfet();
        let table = TableFet::sample(&inner, (-1.2, 0.2), (-1.2, 0.2), 11, 11).unwrap();
        assert_eq!(table.polarity(), Polarity::PType);
        assert_eq!(Fet::width(&table), Fet::width(&inner));
    }

    #[test]
    fn tabulated_ballistic_tracks_live_model() {
        let inner = BallisticFet::cnt_fig1().unwrap();
        let table = TableFet::sample(&inner, (-0.1, 0.7), (-0.1, 0.7), 33, 33).unwrap();
        for (vg, vd) in [(0.3, 0.3), (0.5, 0.5), (0.45, 0.12)] {
            let exact = inner.ids(vg, vd);
            let approx = table.ids(vg, vd);
            assert!(
                (exact - approx).abs() < 0.05 * exact.abs().max(1e-9),
                "({vg}, {vd})"
            );
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 17, 17).unwrap();
        // Includes out-of-window points to exercise the clamp path.
        let bias: Vec<(f64, f64)> = [-0.4, 0.0, 0.131, 0.5, 0.977, 1.0, 1.6]
            .iter()
            .flat_map(|&vg| [-0.2, 0.013, 0.49, 1.0, 1.3].map(|vd| (vg, vd)))
            .collect();
        let mut out = vec![0.0; bias.len()];
        table.ids_batch(&bias, &mut out);
        for (&(vg, vd), &got) in bias.iter().zip(&out) {
            assert_eq!(got.to_bits(), table.ids(vg, vd).to_bits(), "({vg}, {vd})");
        }
    }

    #[test]
    fn eval_is_bit_identical_to_composed_default() {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 17, 17).unwrap();
        for (vg, vd) in [(0.2, 0.9), (0.55, 0.01), (1.4, 0.5), (-0.3, 1.2)] {
            let (id, gm, gds) = table.eval(vg, vd);
            let (gm_d, gds_d) = table.gm_gds(vg, vd);
            assert_eq!(id.to_bits(), table.ids(vg, vd).to_bits());
            assert_eq!(gm.to_bits(), gm_d.to_bits(), "gm ({vg}, {vd})");
            assert_eq!(gds.to_bits(), gds_d.to_bits(), "gds ({vg}, {vd})");
        }
    }

    #[test]
    fn grid_validation() {
        let inner = AlphaPowerFet::fig2_nfet();
        assert!(TableFet::sample(&inner, (1.0, 0.0), (0.0, 1.0), 11, 11).is_err());
        assert!(TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 3, 11).is_err());
    }
}

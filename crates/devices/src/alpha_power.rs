//! Sakurai–Newton alpha-power-law MOSFET — the "well-behaved FET with
//! current saturation" of the paper's Fig. 2(a), and the silicon
//! reference device of the §III.E benchmark.
//!
//! Above threshold the model is the classic alpha-power law with a
//! finite output slope (`λ`), because the paper's Fig. 2(a) device is
//! deliberately "not a perfect saturation behavior". Below threshold the
//! overdrive is replaced by a softplus interpolation so the subthreshold
//! region is a clean exponential with a configurable swing, and the whole
//! characteristic is smooth — which the Newton solver in `carbon-spice`
//! appreciates.

use carbon_units::{Length, Voltage};

use crate::{Fet, Polarity};

/// Alpha-power-law FET.
///
/// # Examples
///
/// ```
/// use carbon_devices::{AlphaPowerFet, Fet};
/// use carbon_units::Voltage;
///
/// let nfet = AlphaPowerFet::fig2_nfet();
/// let on = nfet.drain_current(Voltage::from_volts(1.0), Voltage::from_volts(1.0));
/// assert!(on.microamperes() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaPowerFet {
    /// Threshold voltage, V (positive; polarity handles sign).
    vt: f64,
    /// Velocity-saturation index α ∈ [1, 2].
    alpha: f64,
    /// Current factor: `I_Dsat = b·V_ov^α`, A/V^α.
    b: f64,
    /// Saturation-voltage factor: `V_Dsat = kv·V_ov^(α/2)`, V^(1−α/2).
    kv: f64,
    /// Channel-length-modulation slope, 1/V (0 = perfect saturation).
    lambda: f64,
    /// Subthreshold swing, mV/dec.
    ss_mv_per_dec: f64,
    polarity: Polarity,
    width: Option<Length>,
}

/// Error building an [`AlphaPowerFet`] from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildAlphaPowerError(String);

impl std::fmt::Display for BuildAlphaPowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid alpha-power parameters: {}", self.0)
    }
}

impl std::error::Error for BuildAlphaPowerError {}

impl AlphaPowerFet {
    /// Creates an n-type device.
    ///
    /// # Errors
    ///
    /// Returns [`BuildAlphaPowerError`] unless `vt > 0`, `1 ≤ alpha ≤ 2`,
    /// `b > 0`, `kv > 0`, `lambda ≥ 0` and `ss ≥` the thermal limit.
    pub fn new(
        vt: f64,
        alpha: f64,
        b: f64,
        kv: f64,
        lambda: f64,
        ss_mv_per_dec: f64,
    ) -> Result<Self, BuildAlphaPowerError> {
        if !(vt.is_finite() && vt > 0.0) {
            return Err(BuildAlphaPowerError(format!(
                "vt must be positive, got {vt}"
            )));
        }
        if !(1.0..=2.0).contains(&alpha) {
            return Err(BuildAlphaPowerError(format!(
                "alpha must be in [1, 2], got {alpha}"
            )));
        }
        if !(b.is_finite() && b > 0.0 && kv.is_finite() && kv > 0.0) {
            return Err(BuildAlphaPowerError(format!(
                "b and kv must be positive, got {b}, {kv}"
            )));
        }
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(BuildAlphaPowerError(format!(
                "lambda must be ≥ 0, got {lambda}"
            )));
        }
        if ss_mv_per_dec < carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC {
            return Err(BuildAlphaPowerError(format!(
                "subthreshold swing {ss_mv_per_dec} mV/dec is below the thermal limit"
            )));
        }
        Ok(Self {
            vt,
            alpha,
            b,
            kv,
            lambda,
            ss_mv_per_dec,
            polarity: Polarity::NType,
            width: None,
        })
    }

    /// Converts the device to p-type (mirror symmetry).
    pub fn into_p_type(mut self) -> Self {
        self.polarity = Polarity::PType;
        self
    }

    /// Attaches a footprint width for per-micron normalization.
    pub fn with_width(mut self, w: Length) -> Self {
        self.width = Some(w);
        self
    }

    /// The symmetric nFET used in the Fig. 2(a)/(c) inverter: V_T
    /// = 0.3 V, α = 1.3, mild channel-length modulation (λ = 0.15/V — a
    /// "realistic, not perfect" saturation), ~0.45 mA at
    /// `V_GS = V_DS = 1 V`.
    pub fn fig2_nfet() -> Self {
        Self::new(0.3, 1.3, 7.2e-4, 0.8, 0.15, 75.0)
            .expect("fig2 preset parameters are valid")
            .with_width(Length::from_micrometers(1.0))
    }

    /// The matching symmetric pFET of Fig. 2 (mirror of
    /// [`fig2_nfet`](Self::fig2_nfet)).
    pub fn fig2_pfet() -> Self {
        Self::fig2_nfet().into_p_type()
    }

    /// The §III.E Intel trigate reference: 30 nm gate length, fin
    /// 35 nm tall × 18 nm wide, delivering ~66 µA at
    /// `V_DS = V_GS = 1 V`. The effective electrical width is the fin
    /// perimeter (2·35 + 18 = 88 nm).
    pub fn intel_trigate_30nm() -> Self {
        // b·(1 − 0.3)^1.3 = 66 µA → b ≈ 1.05e-4.
        Self::new(0.3, 1.3, 1.05e-4, 0.8, 0.08, 70.0)
            .expect("trigate preset parameters are valid")
            .with_width(Length::from_nanometers(88.0))
    }

    /// Threshold voltage (positive magnitude).
    pub fn vt(&self) -> Voltage {
        Voltage::from_volts(self.vt)
    }

    /// Returns a copy with threshold voltage `vt` — the scalar oracle
    /// for the [`ids_soa_vt`](Self::ids_soa_vt) parameter lane.
    ///
    /// # Errors
    ///
    /// Same `vt` validation as [`new`](Self::new).
    pub fn with_vt(&self, vt: f64) -> Result<Self, BuildAlphaPowerError> {
        if !(vt.is_finite() && vt > 0.0) {
            return Err(BuildAlphaPowerError(format!(
                "vt must be positive, got {vt}"
            )));
        }
        Ok(Self { vt, ..self.clone() })
    }

    /// Softplus scale chosen so the subthreshold decade slope is ss:
    /// below Vt, veff ≈ s·exp((vgs−vt)/s); current ∝ veff^alpha, so
    /// slope in decades/V is alpha/(s·ln10) → s = alpha·ss_v/ln10,
    /// expressed directly with ss in volts/decade. Vt-independent, so
    /// the SoA kernels hoist it out of their lane loops.
    #[inline]
    fn softplus_scale(&self) -> f64 {
        let ss_v = self.ss_mv_per_dec / 1e3;
        self.alpha * ss_v / std::f64::consts::LN_10
    }

    /// Effective overdrive: softplus interpolation that is exponential
    /// `ss` mV/dec below threshold and `(v_gs − v_t)` above, with the
    /// scale `s` and threshold `vt` supplied by the caller (the scalar
    /// path passes `self` values; SoA kernels pass hoisted/lane values).
    #[inline]
    fn overdrive_scaled(s: f64, vt: f64, vgs: f64) -> f64 {
        let x = (vgs - vt) / s;
        if x > 35.0 {
            vgs - vt
        } else if x < -35.0 {
            s * x.exp()
        } else {
            s * x.exp().ln_1p()
        }
    }

    #[inline]
    fn ids_ntype_scaled(&self, s: f64, vt: f64, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            return -self.ids_ntype_scaled(s, vt, vgs - vds, -vds);
        }
        let vov = Self::overdrive_scaled(s, vt, vgs);
        if vov <= 0.0 {
            return 0.0;
        }
        let idsat = self.b * vov.powf(self.alpha);
        let vdsat = self.kv * vov.powf(self.alpha / 2.0);
        if vds < vdsat {
            let x = vds / vdsat;
            idsat * (2.0 - x) * x
        } else {
            idsat * (1.0 + self.lambda * (vds - vdsat))
        }
    }

    fn ids_ntype(&self, vgs: f64, vds: f64) -> f64 {
        self.ids_ntype_scaled(self.softplus_scale(), self.vt, vgs, vds)
    }

    /// SoA drain current over `vgs`/`vds` bias lanes **and** a `vt`
    /// parameter lane: `out[i]` is bit-identical to
    /// `self.with_vt(vt[i])?.ids(vgs[i], vds[i])`.
    ///
    /// The threshold enters the model only through the overdrive
    /// `(v_gs − v_t)`, so one call covers N bias points × M Monte-Carlo
    /// threshold samples without constructing M models; the softplus
    /// scale is vt-independent and hoisted once.
    ///
    /// # Panics
    ///
    /// Panics per [`carbon_spice::batch_lanes_match`] on mismatched
    /// lane lengths; empty lanes return immediately.
    pub fn ids_soa_vt(&self, vgs: &[f64], vds: &[f64], vt: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("vt", vt.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        let s = self.softplus_scale();
        match self.polarity {
            Polarity::NType => crate::batch::soa_loop_param(vgs, vds, vt, out, |g, d, t| {
                self.ids_ntype_scaled(s, t, g, d)
            }),
            Polarity::PType => crate::batch::soa_loop_param(vgs, vds, vt, out, |g, d, t| {
                -self.ids_ntype_scaled(s, t, -g, -d)
            }),
        }
    }
}

impl carbon_spice::FetCurve for AlphaPowerFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        match self.polarity {
            Polarity::NType => self.ids_ntype(vgs, vds),
            Polarity::PType => -self.ids_ntype(-vgs, -vds),
        }
    }

    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        // Route the Newton-stamp hot path through the SoA kernel: one
        // polarity dispatch + one hoisted softplus scale for all five
        // stencil lanes, bit-identical to the composed default.
        crate::batch::eval_via_soa(self, vgs, vds)
    }
}

impl crate::batch::BatchEval for AlphaPowerFet {
    fn ids_soa(&self, vgs: &[f64], vds: &[f64], out: &mut [f64]) {
        if !carbon_spice::batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("out", out.len()),
        ]) {
            return;
        }
        let s = self.softplus_scale();
        match self.polarity {
            Polarity::NType => crate::batch::soa_loop(vgs, vds, out, |g, d| {
                self.ids_ntype_scaled(s, self.vt, g, d)
            }),
            Polarity::PType => crate::batch::soa_loop(vgs, vds, out, |g, d| {
                -self.ids_ntype_scaled(s, self.vt, -g, -d)
            }),
        }
    }
}

impl Fet for AlphaPowerFet {
    fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn width(&self) -> Option<Length> {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_spice::FetCurve;

    #[test]
    fn trigate_preset_hits_66_microamps() {
        let t = AlphaPowerFet::intel_trigate_30nm();
        let i = t.ids(1.0, 1.0);
        assert!((i * 1e6 - 66.0).abs() < 5.0, "I = {} µA", i * 1e6);
    }

    #[test]
    fn saturation_region_has_small_slope() {
        let f = AlphaPowerFet::fig2_nfet();
        let o = f.output(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            101,
            Voltage::from_volts(1.0),
        );
        // The paper's Fig. 2(a) shape: strong saturation figure.
        assert!(
            o.saturation_figure() > 3.0,
            "figure = {}",
            o.saturation_figure()
        );
    }

    #[test]
    fn perfect_saturation_with_zero_lambda() {
        let f = AlphaPowerFet::new(0.3, 1.3, 7.2e-4, 0.8, 0.0, 75.0).unwrap();
        let i1 = f.ids(1.0, 0.9);
        let i2 = f.ids(1.0, 1.0);
        assert_eq!(i1, i2, "flat beyond vdsat");
    }

    #[test]
    fn subthreshold_slope_matches_parameter() {
        let f = AlphaPowerFet::fig2_nfet();
        let t = f.transfer(
            Voltage::from_volts(-0.2),
            Voltage::from_volts(1.0),
            241,
            Voltage::from_volts(1.0),
        );
        let ss = t.swing_between(1e-10, 1e-8).unwrap();
        assert!((ss - 75.0).abs() < 3.0, "ss = {ss}");
    }

    #[test]
    fn continuous_across_threshold_and_vdsat() {
        let f = AlphaPowerFet::fig2_nfet();
        // No jumps: scan finely and bound relative steps.
        let mut prev = f.ids(-0.1, 0.7);
        for k in 1..400 {
            let vg = -0.1 + k as f64 * 0.004;
            let i = f.ids(vg, 0.7);
            assert!(i >= prev, "monotone at vg = {vg}");
            prev = i;
        }
    }

    #[test]
    fn p_type_mirror() {
        let n = AlphaPowerFet::fig2_nfet();
        let p = AlphaPowerFet::fig2_pfet();
        assert!((n.ids(0.8, 0.6) + p.ids(-0.8, -0.6)).abs() < 1e-15);
        assert_eq!(p.polarity(), Polarity::PType);
    }

    #[test]
    fn triode_region_is_resistive() {
        let f = AlphaPowerFet::fig2_nfet();
        let g1 = f.ids(1.0, 0.02) / 0.02;
        let g2 = f.ids(1.0, 0.04) / 0.04;
        assert!((g1 / g2 - 1.0).abs() < 0.1, "ohmic onset");
    }

    #[test]
    fn parameter_validation() {
        assert!(AlphaPowerFet::new(-0.3, 1.3, 1e-4, 0.8, 0.1, 70.0).is_err());
        assert!(AlphaPowerFet::new(0.3, 2.5, 1e-4, 0.8, 0.1, 70.0).is_err());
        assert!(AlphaPowerFet::new(0.3, 1.3, 0.0, 0.8, 0.1, 70.0).is_err());
        assert!(AlphaPowerFet::new(0.3, 1.3, 1e-4, 0.8, -0.1, 70.0).is_err());
        assert!(AlphaPowerFet::new(0.3, 1.3, 1e-4, 0.8, 0.1, 30.0).is_err());
    }

    #[test]
    fn off_current_is_tiny() {
        let f = AlphaPowerFet::fig2_nfet();
        assert!(f.ids(0.0, 1.0) < 1e-7);
        assert!(f.ids(0.0, 1.0) > 0.0, "but finite (subthreshold)");
    }
}

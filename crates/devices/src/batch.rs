//! Structure-of-arrays batched device evaluation.
//!
//! One call evaluates a compact model over many bias points (and, via
//! the per-model parameter-lane kernels such as
//! [`AlphaPowerFet::ids_soa_vt`](crate::AlphaPowerFet::ids_soa_vt), many
//! Monte-Carlo parameter samples): separate `vgs[]`/`vds[]` lanes
//! instead of an array of structs, per-model kernels that hoist field
//! loads and grid geometry out of the loop, and fixed-width
//! `chunks_exact` bodies the compiler can unroll and vectorize.
//!
//! The scalar `ids`/`eval` path is the **bit-identity oracle**: every
//! lane of every kernel must reproduce the corresponding scalar call
//! bitwise — batching is a speedup, never a numerics change (the same
//! contract as the dense/sparse LU split in `carbon-spice`). Kernels
//! keep that promise by hoisting only *loads* (fields, derived
//! constants computed with the exact scalar expressions) while leaving
//! the per-lane arithmetic operand-for-operand identical; no `mul_add`,
//! no reassociation.
//!
//! Lane lengths follow the one contract of
//! [`carbon_spice::batch_lanes_match`]: mismatches panic naming both
//! fields, empty lane sets are a no-op.
//!
//! [`par_ids_soa`] runs a lane set on the runtime executor in fixed
//! [`SOA_CHUNK`]-point chunks; the chunking never depends on the thread
//! count and per-chunk work is pure, so results are byte-identical at
//! any `CARBON_THREADS` — this is what [`Fet::transfer`](crate::Fet)
//! and [`Fet::output`](crate::Fet) ride on.

use carbon_spice::batch_lanes_match;

/// Unroll width of the shared SoA loop drivers: wide enough to fill
/// 512-bit vectors, small enough that the scalar tail stays cheap.
const LANE: usize = 8;

/// Fixed chunk size of [`par_ids_soa`]. Chunk boundaries depend only on
/// the lane count, never on the thread count, so the reassembled result
/// is byte-identical at any `CARBON_THREADS`.
pub const SOA_CHUNK: usize = 16;

/// Structure-of-arrays batched evaluation over separate `vgs`/`vds`
/// lanes.
///
/// Every method must stay **bit-identical** to the scalar
/// [`FetCurve`](carbon_spice::FetCurve) path — the defaults are the
/// oracle, overrides only amortize loads and index math. All lane
/// lengths share the [`batch_lanes_match`] contract.
pub trait BatchEval: carbon_spice::FetCurve {
    /// Drain current over matched `vgs`/`vds` lanes, writing `out[i] =
    /// ids(vgs[i], vds[i])` (bitwise).
    ///
    /// # Panics
    ///
    /// Panics per [`batch_lanes_match`] on mismatched lane lengths;
    /// empty lanes return immediately.
    fn ids_soa(&self, vgs: &[f64], vds: &[f64], out: &mut [f64]) {
        if !batch_lanes_match(&[("vgs", vgs.len()), ("vds", vds.len()), ("out", out.len())]) {
            return;
        }
        for ((o, &g), &d) in out.iter_mut().zip(vgs).zip(vds) {
            *o = self.ids(g, d);
        }
    }

    /// Current and both derivatives over lanes via the shared 5-point
    /// stencil: `ids[i]`, `gm[i] = ∂I/∂V_GS`, `gds[i] = ∂I/∂V_DS`,
    /// each bit-identical to the scalar
    /// [`eval`](carbon_spice::FetCurve::eval) default composition.
    ///
    /// # Panics
    ///
    /// Panics per [`batch_lanes_match`] on mismatched lane lengths;
    /// empty lanes return immediately.
    fn eval_soa(&self, vgs: &[f64], vds: &[f64], ids: &mut [f64], gm: &mut [f64], gds: &mut [f64]) {
        if !batch_lanes_match(&[
            ("vgs", vgs.len()),
            ("vds", vds.len()),
            ("ids", ids.len()),
            ("gm", gm.len()),
            ("gds", gds.len()),
        ]) {
            return;
        }
        // `H` and the difference quotients must match the
        // `FetCurve::gm_gds` default so results stay bit-identical.
        const H: f64 = 1e-3;
        let n = vgs.len();
        self.ids_soa(vgs, vds, ids);
        let mut shifted: Vec<f64> = vgs.iter().map(|&v| v + H).collect();
        let mut hi = vec![0.0; n];
        let mut lo = vec![0.0; n];
        self.ids_soa(&shifted, vds, &mut hi);
        for (s, &v) in shifted.iter_mut().zip(vgs) {
            *s = v - H;
        }
        self.ids_soa(&shifted, vds, &mut lo);
        for ((g, &h), &l) in gm.iter_mut().zip(&hi).zip(&lo) {
            *g = (h - l) / (2.0 * H);
        }
        for (s, &v) in shifted.iter_mut().zip(vds) {
            *s = v + H;
        }
        self.ids_soa(vgs, &shifted, &mut hi);
        for (s, &v) in shifted.iter_mut().zip(vds) {
            *s = v - H;
        }
        self.ids_soa(vgs, &shifted, &mut lo);
        for ((g, &h), &l) in gds.iter_mut().zip(&hi).zip(&lo) {
            *g = (h - l) / (2.0 * H);
        }
    }
}

/// Scalar `eval` routed through one 5-lane [`BatchEval::ids_soa`] call —
/// the shared stencil every overriding model uses, so a Newton
/// iteration's value + derivatives cost one kernel invocation with the
/// model's constants hoisted once instead of five scalar dispatches.
///
/// Bit-identical to the default `ids` + `gm_gds` composition because
/// each stencil lane is bit-identical to the scalar `ids` at that bias
/// and the difference quotients are the same expressions.
pub fn eval_via_soa<M: BatchEval + ?Sized>(model: &M, vgs: f64, vds: f64) -> (f64, f64, f64) {
    const H: f64 = 1e-3;
    let vg = [vgs, vgs + H, vgs - H, vgs, vgs];
    let vd = [vds, vds, vds, vds + H, vds - H];
    let mut i = [0.0; 5];
    model.ids_soa(&vg, &vd, &mut i);
    (i[0], (i[1] - i[2]) / (2.0 * H), (i[3] - i[4]) / (2.0 * H))
}

/// Evaluates `ids` over lanes on the runtime executor in fixed
/// [`SOA_CHUNK`]-point chunks, reassembled by index.
///
/// Chunk boundaries depend only on the lane count and the per-chunk
/// work is pure, so the result is byte-identical at any
/// `CARBON_THREADS` — and bit-identical to one
/// [`BatchEval::ids_soa`] call over the whole lane set. Emits
/// `devices.batch.lanes` / `devices.batch.chunks` trace counters.
///
/// # Panics
///
/// Panics per [`batch_lanes_match`] on mismatched lane lengths.
pub fn par_ids_soa<M: BatchEval + ?Sized>(model: &M, vgs: &[f64], vds: &[f64]) -> Vec<f64> {
    if !batch_lanes_match(&[("vgs", vgs.len()), ("vds", vds.len())]) {
        return Vec::new();
    }
    let n = vgs.len();
    let n_chunks = n.div_ceil(SOA_CHUNK);
    carbon_trace::counter!("devices.batch.lanes", n as u64);
    carbon_trace::counter!("devices.batch.chunks", n_chunks as u64);
    let chunks = carbon_runtime::par_map(n_chunks, |c| {
        let a = c * SOA_CHUNK;
        let b = (a + SOA_CHUNK).min(n);
        let mut out = vec![0.0; b - a];
        model.ids_soa(&vgs[a..b], &vds[a..b], &mut out);
        out
    });
    let mut out = Vec::with_capacity(n);
    for chunk in &chunks {
        out.extend_from_slice(chunk);
    }
    out
}

/// Drives a two-lane SoA kernel body in [`LANE`]-wide `chunks_exact`
/// blocks with a scalar tail: the fixed-trip inner loop is what the
/// compiler unrolls and vectorizes. Lane lengths must already be
/// validated by the caller.
#[inline]
pub(crate) fn soa_loop(vgs: &[f64], vds: &[f64], out: &mut [f64], body: impl Fn(f64, f64) -> f64) {
    let mut o = out.chunks_exact_mut(LANE);
    let mut g = vgs.chunks_exact(LANE);
    let mut d = vds.chunks_exact(LANE);
    for ((ob, gb), db) in (&mut o).zip(&mut g).zip(&mut d) {
        for (ok, (&gk, &dk)) in ob.iter_mut().zip(gb.iter().zip(db)) {
            *ok = body(gk, dk);
        }
    }
    for ((ot, &gt), &dt) in o
        .into_remainder()
        .iter_mut()
        .zip(g.remainder())
        .zip(d.remainder())
    {
        *ot = body(gt, dt);
    }
}

/// Three-lane variant of [`soa_loop`] for kernels with one parameter
/// lane (e.g. a Monte-Carlo `vt[]` sample lane) alongside the bias.
#[inline]
pub(crate) fn soa_loop_param(
    vgs: &[f64],
    vds: &[f64],
    param: &[f64],
    out: &mut [f64],
    body: impl Fn(f64, f64, f64) -> f64,
) {
    let mut o = out.chunks_exact_mut(LANE);
    let mut g = vgs.chunks_exact(LANE);
    let mut d = vds.chunks_exact(LANE);
    let mut p = param.chunks_exact(LANE);
    for (((ob, gb), db), pb) in (&mut o).zip(&mut g).zip(&mut d).zip(&mut p) {
        for (ok, ((&gk, &dk), &pk)) in ob.iter_mut().zip(gb.iter().zip(db).zip(pb)) {
            *ok = body(gk, dk, pk);
        }
    }
    for (((ot, &gt), &dt), &pt) in o
        .into_remainder()
        .iter_mut()
        .zip(g.remainder())
        .zip(d.remainder())
        .zip(p.remainder())
    {
        *ot = body(gt, dt, pt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaPowerFet, BallisticFet, CntTfet, LinearGnrFet, SeriesResistance, TableFet};
    use carbon_runtime::prop::prelude::*;
    use carbon_runtime::{prop, Executor};
    use carbon_spice::FetCurve;

    fn grid_lanes(n: usize) -> (Vec<f64>, Vec<f64>) {
        // A deterministic mix of in-window, subthreshold, negative-vds
        // and out-of-window points.
        let vgs: Vec<f64> = (0..n).map(|k| -0.4 + 1.8 * k as f64 / n as f64).collect();
        let vds: Vec<f64> = (0..n)
            .map(|k| -0.3 + 1.6 * ((7 * k) % n) as f64 / n as f64)
            .collect();
        (vgs, vds)
    }

    fn assert_ids_soa_matches_scalar(model: &(impl BatchEval + std::fmt::Debug), n: usize) {
        let (vgs, vds) = grid_lanes(n);
        let mut out = vec![0.0; n];
        model.ids_soa(&vgs, &vds, &mut out);
        for k in 0..n {
            assert_eq!(
                out[k].to_bits(),
                model.ids(vgs[k], vds[k]).to_bits(),
                "{model:?} lane {k} at ({}, {})",
                vgs[k],
                vds[k]
            );
        }
    }

    #[test]
    fn kernels_are_bit_identical_to_scalar_ids() {
        assert_ids_soa_matches_scalar(&AlphaPowerFet::fig2_nfet(), 37);
        assert_ids_soa_matches_scalar(&AlphaPowerFet::fig2_pfet(), 37);
        assert_ids_soa_matches_scalar(&LinearGnrFet::sub10nm_fig1(), 37);
        assert_ids_soa_matches_scalar(&LinearGnrFet::fig2_pfet(), 37);
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 17, 17).unwrap();
        assert_ids_soa_matches_scalar(&table, 37);
    }

    #[test]
    fn ballistic_kernel_is_bit_identical_to_scalar_ids() {
        let cnt = BallisticFet::cnt_fig1().unwrap();
        assert_ids_soa_matches_scalar(&cnt, 9);
    }

    #[test]
    fn default_impls_cover_wrapper_models() {
        let inner = AlphaPowerFet::fig2_nfet();
        let series = SeriesResistance::symmetric(
            std::sync::Arc::new(inner),
            carbon_units::Resistance::from_ohms(1e3),
        );
        assert_ids_soa_matches_scalar(&series, 9);
        let tfet = CntTfet::fig6();
        assert_ids_soa_matches_scalar(&tfet, 9);
    }

    #[test]
    fn eval_soa_matches_scalar_eval() {
        let models: Vec<Box<dyn BatchEval>> = vec![
            Box::new(AlphaPowerFet::fig2_nfet()),
            Box::new(LinearGnrFet::sub10nm_fig1()),
            Box::new({
                let inner = AlphaPowerFet::fig2_nfet();
                TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 17, 17).unwrap()
            }),
        ];
        let (vgs, vds) = grid_lanes(23);
        for model in &models {
            let n = vgs.len();
            let (mut ids, mut gm, mut gds) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            model.eval_soa(&vgs, &vds, &mut ids, &mut gm, &mut gds);
            for k in 0..n {
                let (i_s, gm_s, gds_s) = model.eval(vgs[k], vds[k]);
                assert_eq!(ids[k].to_bits(), i_s.to_bits(), "ids lane {k}");
                assert_eq!(gm[k].to_bits(), gm_s.to_bits(), "gm lane {k}");
                assert_eq!(gds[k].to_bits(), gds_s.to_bits(), "gds lane {k}");
            }
        }
    }

    #[test]
    fn par_ids_soa_matches_single_call_at_any_thread_count() {
        let model = AlphaPowerFet::fig2_nfet();
        let (vgs, vds) = grid_lanes(101);
        let mut serial = vec![0.0; vgs.len()];
        model.ids_soa(&vgs, &vds, &mut serial);
        for threads in [1, 2, 4, 8] {
            // par_map picks up the ambient executor only through
            // thread-count defaults; pin it explicitly per run.
            let par = Executor::with_threads(threads)
                .par_map(vgs.len().div_ceil(SOA_CHUNK), |c| {
                    let a = c * SOA_CHUNK;
                    let b = (a + SOA_CHUNK).min(vgs.len());
                    let mut out = vec![0.0; b - a];
                    model.ids_soa(&vgs[a..b], &vds[a..b], &mut out);
                    out
                })
                .concat();
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.to_bits(), s.to_bits());
            }
        }
        let entry = par_ids_soa(&model, &vgs, &vds);
        for (p, s) in entry.iter().zip(&serial) {
            assert_eq!(p.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn empty_lanes_are_a_noop() {
        let model = AlphaPowerFet::fig2_nfet();
        model.ids_soa(&[], &[], &mut []);
        assert!(par_ids_soa(&model, &[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch lane length mismatch: vgs.len() = 3 but out.len() = 2")]
    fn mismatched_lanes_panic_with_named_fields() {
        let model = AlphaPowerFet::fig2_nfet();
        model.ids_soa(&[0.1, 0.2, 0.3], &[0.5, 0.5, 0.5], &mut [0.0; 2]);
    }

    /// Splits one drawn `[0, 1)` sample vector into `lanes` equal lanes
    /// of `len / lanes` points each, scaled to `[lo, hi)` per lane.
    fn split_lanes(samples: &[f64], lanes: usize, windows: &[(f64, f64)]) -> Vec<Vec<f64>> {
        let n = samples.len() / lanes;
        (0..lanes)
            .map(|l| {
                let (lo, hi) = windows[l];
                samples[l * n..(l + 1) * n]
                    .iter()
                    .map(|&x| lo + (hi - lo) * x)
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_alpha_power_soa_is_bit_identical(
            samples in prop::vec(0.0_f64..1.0, 0..96),
        ) {
            let model = AlphaPowerFet::fig2_nfet();
            let lanes = split_lanes(&samples, 2, &[(-1.5, 1.5), (-1.5, 1.5)]);
            let (vgs, vds) = (&lanes[0], &lanes[1]);
            let mut out = vec![0.0; vgs.len()];
            model.ids_soa(vgs, vds, &mut out);
            for k in 0..vgs.len() {
                prop_assert_eq!(out[k].to_bits(), model.ids(vgs[k], vds[k]).to_bits());
            }
        }

        #[test]
        fn prop_linear_gnr_soa_is_bit_identical(
            samples in prop::vec(0.0_f64..1.0, 0..96),
        ) {
            let model = LinearGnrFet::sub10nm_fig1();
            let lanes = split_lanes(&samples, 2, &[(-1.5, 1.5), (-1.5, 1.5)]);
            let (vgs, vds) = (&lanes[0], &lanes[1]);
            let mut out = vec![0.0; vgs.len()];
            model.ids_soa(vgs, vds, &mut out);
            for k in 0..vgs.len() {
                prop_assert_eq!(out[k].to_bits(), model.ids(vgs[k], vds[k]).to_bits());
            }
        }

        #[test]
        fn prop_table_soa_and_eval_are_bit_identical(
            samples in prop::vec(0.0_f64..1.0, 2..96),
        ) {
            let inner = AlphaPowerFet::fig2_nfet();
            let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 17, 17).unwrap();
            let lanes = split_lanes(&samples, 2, &[(-0.5, 1.5), (-0.5, 1.5)]);
            let (vgs, vds) = (&lanes[0], &lanes[1]);
            let n = vgs.len();
            let mut out = vec![0.0; n];
            table.ids_soa(vgs, vds, &mut out);
            let (mut ids, mut gm, mut gds) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            table.eval_soa(vgs, vds, &mut ids, &mut gm, &mut gds);
            for k in 0..n {
                prop_assert_eq!(out[k].to_bits(), table.ids(vgs[k], vds[k]).to_bits());
                let (i_s, gm_s, gds_s) = table.eval(vgs[k], vds[k]);
                prop_assert_eq!(ids[k].to_bits(), i_s.to_bits());
                prop_assert_eq!(gm[k].to_bits(), gm_s.to_bits());
                prop_assert_eq!(gds[k].to_bits(), gds_s.to_bits());
            }
        }

        #[test]
        fn prop_alpha_power_vt_lane_matches_rebuilt_model(
            samples in prop::vec(0.0_f64..1.0, 3..96),
        ) {
            let model = AlphaPowerFet::fig2_nfet();
            let lanes = split_lanes(&samples, 3, &[(-1.2, 1.2), (-1.2, 1.2), (0.05, 0.6)]);
            let (vgs, vds, vt) = (&lanes[0], &lanes[1], &lanes[2]);
            let mut out = vec![0.0; vgs.len()];
            model.ids_soa_vt(vgs, vds, vt, &mut out);
            for k in 0..vgs.len() {
                let rebuilt = model.with_vt(vt[k]).unwrap();
                prop_assert_eq!(out[k].to_bits(), rebuilt.ids(vgs[k], vds[k]).to_bits());
            }
        }

        #[test]
        fn prop_linear_gnr_vt_lane_matches_rebuilt_model(
            samples in prop::vec(0.0_f64..1.0, 3..96),
        ) {
            let model = LinearGnrFet::sub10nm_fig1();
            let lanes = split_lanes(&samples, 3, &[(-1.2, 1.2), (-1.2, 1.2), (-0.4, 0.6)]);
            let (vgs, vds, vt) = (&lanes[0], &lanes[1], &lanes[2]);
            let mut out = vec![0.0; vgs.len()];
            model.ids_soa_vt(vgs, vds, vt, &mut out);
            for k in 0..vgs.len() {
                let rebuilt = model.with_vt(vt[k]);
                prop_assert_eq!(out[k].to_bits(), rebuilt.ids(vgs[k], vds[k]).to_bits());
            }
        }

        #[test]
        fn prop_ballistic_soa_is_bit_identical(
            samples in prop::vec(0.0_f64..1.0, 2..10),
        ) {
            let cnt = BallisticFet::cnt_fig1().unwrap();
            let lanes = split_lanes(&samples, 2, &[(-0.3, 0.8), (-0.3, 0.8)]);
            let (vgs, vds) = (&lanes[0], &lanes[1]);
            let mut out = vec![0.0; vgs.len()];
            cnt.ids_soa(vgs, vds, &mut out);
            for k in 0..vgs.len() {
                prop_assert_eq!(out[k].to_bits(), cnt.ids(vgs[k], vds[k]).to_bits());
            }
        }
    }
}

//! I-V curves and figure-of-merit extraction: subthreshold swing, DIBL,
//! normalized on-current, on/off ratio, transconductance, and the
//! saturation metric used to contrast CNTs with real GNRs.
//!
//! The benchmark methodology mirrors the paper's Fig. 5: every device is
//! compared at the same `V_DS` with the gate window positioned so the
//! off-current is a fixed 100 nA/µm, and the on-current read one supply
//! voltage above that point.

use carbon_units::Voltage;

/// A sampled I-V characteristic with a monotonically increasing bias
/// grid.
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    bias: Vec<f64>,
    current: Vec<f64>,
}

/// Error from figure-of-merit extraction when the requested feature is
/// not present in the curve (e.g. the curve never crosses the target
/// current).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractError(String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extraction failed: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

impl IvCurve {
    /// Wraps sampled data.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, have fewer than 2 points,
    /// or the bias grid is not strictly increasing.
    pub fn new(bias: Vec<f64>, current: Vec<f64>) -> Self {
        assert_eq!(bias.len(), current.len(), "bias/current length mismatch");
        assert!(bias.len() >= 2, "need at least two samples");
        assert!(
            bias.windows(2).all(|w| w[1] > w[0]),
            "bias grid must be strictly increasing"
        );
        Self { bias, current }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.bias.len()
    }

    /// `true` if the curve is empty (never true for a constructed curve).
    pub fn is_empty(&self) -> bool {
        self.bias.is_empty()
    }

    /// The bias grid.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// The sampled currents.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Linear interpolation of the current at `v` (clamped to the grid).
    pub fn current_at(&self, v: f64) -> f64 {
        if v <= self.bias[0] {
            return self.current[0];
        }
        if v >= *self.bias.last().expect("non-empty") {
            return *self.current.last().expect("non-empty");
        }
        let k = self.bias.partition_point(|&b| b < v);
        let (b0, b1) = (self.bias[k - 1], self.bias[k]);
        let (i0, i1) = (self.current[k - 1], self.current[k]);
        i0 + (i1 - i0) * (v - b0) / (b1 - b0)
    }

    /// The bias at which the (monotone, positive) current crosses
    /// `target`, using log-linear interpolation — the placement step of
    /// the Fig. 5 off-current normalization.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError`] if the current is not positive where
    /// needed or never crosses `target`.
    pub fn bias_at_current(&self, target: f64) -> Result<f64, ExtractError> {
        if target <= 0.0 {
            return Err(ExtractError(format!(
                "target current must be positive, got {target}"
            )));
        }
        for k in 1..self.len() {
            let (i0, i1) = (self.current[k - 1], self.current[k]);
            if (i0 <= target && target <= i1) || (i1 <= target && target <= i0) {
                if i0 <= 0.0 || i1 <= 0.0 {
                    return Err(ExtractError("current not positive at the crossing".into()));
                }
                let (b0, b1) = (self.bias[k - 1], self.bias[k]);
                if i0 == i1 {
                    return Ok(b0);
                }
                let f = (target.ln() - i0.ln()) / (i1.ln() - i0.ln());
                return Ok(b0 + f * (b1 - b0));
            }
        }
        Err(ExtractError(format!(
            "curve never crosses {target:.3e} A (range {:.3e}..{:.3e})",
            self.current.first().copied().unwrap_or(f64::NAN),
            self.current.last().copied().unwrap_or(f64::NAN)
        )))
    }

    /// Average subthreshold swing in mV/decade between two current
    /// levels on a transfer curve.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError`] if either level is not crossed.
    pub fn swing_between(&self, i_low: f64, i_high: f64) -> Result<f64, ExtractError> {
        let v_low = self.bias_at_current(i_low)?;
        let v_high = self.bias_at_current(i_high)?;
        let decades = (i_high / i_low).log10();
        if decades <= 0.0 {
            return Err(ExtractError("i_high must exceed i_low".into()));
        }
        Ok(((v_high - v_low).abs() / decades) * 1e3)
    }

    /// The steepest point-to-point swing (mV/dec) anywhere the current
    /// spans at least `min_ratio` between adjacent samples — the metric
    /// behind the paper's "some of the individual sweep points do even
    /// have a better SS like 32 mV/dec".
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError`] if no adjacent pair spans `min_ratio`.
    pub fn steepest_swing(&self, min_ratio: f64) -> Result<f64, ExtractError> {
        let mut best: Option<f64> = None;
        for k in 1..self.len() {
            let (i0, i1) = (self.current[k - 1], self.current[k]);
            if i0 > 0.0 && i1 > 0.0 {
                let ratio = (i1 / i0).max(i0 / i1);
                if ratio >= min_ratio {
                    let decades = ratio.log10();
                    let ss = (self.bias[k] - self.bias[k - 1]).abs() / decades * 1e3;
                    best = Some(best.map_or(ss, |b: f64| b.min(ss)));
                }
            }
        }
        best.ok_or_else(|| {
            ExtractError(format!(
                "no adjacent samples span a current ratio of {min_ratio}"
            ))
        })
    }

    /// On/off current ratio over the full sampled gate window.
    pub fn on_off_ratio(&self) -> f64 {
        let max = self.current.iter().cloned().fold(f64::MIN, f64::max);
        let min = self
            .current
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min)
            .max(1e-30);
        max / min
    }

    /// Peak point-to-point transconductance (A/V) of a transfer curve.
    pub fn peak_gm(&self) -> f64 {
        self.current
            .windows(2)
            .zip(self.bias.windows(2))
            .map(|(i, v)| ((i[1] - i[0]) / (v[1] - v[0])).abs())
            .fold(0.0, f64::max)
    }

    /// Saturation figure of an *output* curve: the ratio of the average
    /// conductance in the first 20 % of the V_DS range to that in the
    /// last 20 %. A hard-saturating FET scores ≫ 1; an ohmic device
    /// (the paper's "real GNR") scores ≈ 1.
    pub fn saturation_figure(&self) -> f64 {
        let n = self.len();
        let k = (n / 5).max(1);
        let g_head = (self.current[k] - self.current[0]) / (self.bias[k] - self.bias[0]);
        let g_tail = (self.current[n - 1] - self.current[n - 1 - k])
            / (self.bias[n - 1] - self.bias[n - 1 - k]);
        if g_tail.abs() < 1e-30 {
            return f64::INFINITY;
        }
        (g_head / g_tail).abs()
    }
}

/// The Fig. 5 benchmark normalization: given a transfer curve sampled at
/// the benchmark `V_DS`, positions the gate window so the off-current is
/// `i_off` and returns the on-current read `v_dd` above that point.
///
/// # Errors
///
/// Returns [`ExtractError`] if the curve never reaches `i_off`, or if the
/// window extends past the sampled range by more than the clamp the
/// curve's edge provides.
pub fn normalized_on_current(
    transfer: &IvCurve,
    i_off: f64,
    v_dd: Voltage,
) -> Result<f64, ExtractError> {
    let v_off = transfer.bias_at_current(i_off)?;
    Ok(transfer.current_at(v_off + v_dd.volts()))
}

/// Drain-induced barrier lowering in mV/V from two transfer curves taken
/// at a low and a high drain bias: the gate-voltage shift of a constant
/// reference current divided by the drain-voltage difference.
///
/// # Errors
///
/// Returns [`ExtractError`] if either curve misses the reference current
/// or the drain biases coincide.
pub fn dibl(
    low: &IvCurve,
    vds_low: Voltage,
    high: &IvCurve,
    vds_high: Voltage,
    i_ref: f64,
) -> Result<f64, ExtractError> {
    let dv = vds_high.volts() - vds_low.volts();
    if dv.abs() < 1e-12 {
        return Err(ExtractError("drain biases must differ".into()));
    }
    let v1 = low.bias_at_current(i_ref)?;
    let v2 = high.bias_at_current(i_ref)?;
    Ok((v1 - v2) / dv * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_curve(ss_mv: f64, n: usize) -> IvCurve {
        // I = 1e-9 · 10^(v / (ss/1000)): exactly ss mV/dec.
        let bias: Vec<f64> = (0..n).map(|k| k as f64 * 0.01).collect();
        let current = bias
            .iter()
            .map(|v| 1e-9 * 10f64.powf(v / (ss_mv / 1e3)))
            .collect();
        IvCurve::new(bias, current)
    }

    #[test]
    fn construction_validation() {
        assert!(std::panic::catch_unwind(|| IvCurve::new(vec![0.0], vec![1.0])).is_err());
        assert!(std::panic::catch_unwind(|| IvCurve::new(vec![0.0, 0.0], vec![1.0, 2.0])).is_err());
        assert!(std::panic::catch_unwind(|| IvCurve::new(vec![0.0, 1.0], vec![1.0])).is_err());
    }

    #[test]
    fn interpolation() {
        let c = IvCurve::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0]);
        assert_eq!(c.current_at(-1.0), 0.0);
        assert_eq!(c.current_at(0.5), 5.0);
        assert_eq!(c.current_at(1.5), 25.0);
        assert_eq!(c.current_at(3.0), 40.0);
    }

    #[test]
    fn swing_extraction_recovers_exact_exponential() {
        let c = exp_curve(60.0, 60);
        let ss = c.swing_between(1e-8, 1e-6).unwrap();
        assert!((ss - 60.0).abs() < 0.5, "ss = {ss}");
        let c83 = exp_curve(83.0, 60);
        let ss83 = c83.swing_between(1e-8, 1e-6).unwrap();
        assert!((ss83 - 83.0).abs() < 0.5);
    }

    #[test]
    fn steepest_swing_finds_local_steep_region() {
        // Two-slope curve: 100 mV/dec then 30 mV/dec.
        let mut bias = vec![];
        let mut cur = vec![];
        let mut v = 0.0;
        let mut i: f64 = 1e-10;
        for _ in 0..10 {
            bias.push(v);
            cur.push(i);
            v += 0.01;
            i *= 10f64.powf(0.01 / 0.100);
        }
        for _ in 0..10 {
            bias.push(v);
            cur.push(i);
            v += 0.01;
            i *= 10f64.powf(0.01 / 0.030);
        }
        let c = IvCurve::new(bias, cur);
        let best = c.steepest_swing(1.2).unwrap();
        assert!((best - 30.0).abs() < 1.0, "best = {best}");
    }

    #[test]
    fn bias_at_current_log_interpolates() {
        let c = exp_curve(60.0, 60);
        let v = c.bias_at_current(1e-7).unwrap();
        // 2 decades above 1e-9 → v = 0.12.
        assert!((v - 0.12).abs() < 1e-6, "v = {v}");
        assert!(c.bias_at_current(1e3).is_err(), "beyond range");
        assert!(c.bias_at_current(-1.0).is_err());
    }

    #[test]
    fn normalized_ion_on_exponential_plus_linear() {
        // Exponential to 1 µA then linear: check the two-step procedure.
        let c = exp_curve(60.0, 60);
        let ion = normalized_on_current(&c, 1e-9, Voltage::from_volts(0.3)).unwrap();
        // 0.3 V / 60 mV = 5 decades above 1e-9 → 1e-4 (clamped inside).
        assert!((ion.log10() + 4.0).abs() < 0.1, "ion = {ion:.3e}");
    }

    #[test]
    fn dibl_extraction() {
        let low = exp_curve(60.0, 60);
        // High-V_DS curve shifted left by 50 mV (barrier lowering).
        let bias: Vec<f64> = low.bias().iter().map(|v| v - 0.05).collect();
        let high = IvCurve::new(bias, low.current().to_vec());
        let d = dibl(
            &low,
            Voltage::from_volts(0.05),
            &high,
            Voltage::from_volts(0.55),
            1e-7,
        )
        .unwrap();
        assert!((d - 100.0).abs() < 1.0, "DIBL = {d} mV/V");
    }

    #[test]
    fn saturation_figure_discriminates() {
        // Saturating: i = tanh(5 v); ohmic: i = v.
        let bias: Vec<f64> = (0..51).map(|k| k as f64 * 0.01).collect();
        let sat = IvCurve::new(
            bias.clone(),
            bias.iter().map(|v| (5.0 * v).tanh()).collect(),
        );
        let ohm = IvCurve::new(bias.clone(), bias.clone());
        assert!(sat.saturation_figure() > 5.0);
        assert!((ohm.saturation_figure() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn on_off_and_gm() {
        let c = exp_curve(60.0, 60);
        assert!(c.on_off_ratio() > 1e5);
        assert!(c.peak_gm() > 0.0);
    }
}

//! Property-based tests of the compact models: invariants every
//! physically sane FET model must satisfy across its parameter space.

use std::sync::Arc;

use carbon_devices::{AlphaPowerFet, CntTfet, IvCurve, LinearGnrFet, SeriesResistance, TableFet};
use carbon_runtime::prop::prelude::*;
use carbon_spice::FetCurve;
use carbon_units::{Resistance, Voltage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Alpha-power devices: monotone in V_GS, monotone in V_DS,
    /// antisymmetric under drain reversal, for random valid parameters.
    #[test]
    fn alpha_power_is_well_behaved(
        vt in 0.1_f64..0.5,
        alpha in 1.0_f64..2.0,
        lambda in 0.0_f64..0.5,
        vgs in 0.0_f64..1.2,
        vds in 0.0_f64..1.2,
    ) {
        let f = AlphaPowerFet::new(vt, alpha, 5e-4, 0.8, lambda, 75.0).expect("valid");
        let i = f.ids(vgs, vds);
        prop_assert!(i >= 0.0 && i.is_finite());
        prop_assert!(f.ids(vgs + 0.05, vds) >= i - 1e-15, "monotone in vgs");
        prop_assert!(f.ids(vgs, vds + 0.05) >= i - 1e-15, "monotone in vds");
        // Drain reversal: source-referred swap.
        let rev = f.ids(vgs - vds, -vds);
        prop_assert!((i + rev).abs() < 1e-12 + 1e-9 * i.abs(), "antisymmetric");
    }

    /// The p-type mirror is the exact negative image of the n-type.
    #[test]
    fn p_type_mirror_is_exact(
        vt in 0.1_f64..0.5,
        vgs in -1.2_f64..1.2,
        vds in -1.2_f64..1.2,
    ) {
        let n = AlphaPowerFet::new(vt, 1.3, 5e-4, 0.8, 0.15, 75.0).expect("valid");
        let p = n.clone().into_p_type();
        prop_assert!((n.ids(vgs, vds) + p.ids(-vgs, -vds)).abs() < 1e-15);
    }

    /// Series resistance interpolates between the unloaded device and
    /// the pure-resistor limit, monotonically in R.
    #[test]
    fn series_resistance_monotone_in_r(
        vgs in 0.4_f64..1.0,
        vds in 0.1_f64..1.0,
        r1 in 1.0_f64..100.0,
        dr in 1.0_f64..200.0,
    ) {
        let inner = Arc::new(AlphaPowerFet::fig2_nfet());
        let small = SeriesResistance::symmetric(inner.clone(), Resistance::from_kilohms(r1));
        let large = SeriesResistance::symmetric(inner, Resistance::from_kilohms(r1 + dr));
        prop_assert!(large.ids(vgs, vds) <= small.ids(vgs, vds) * (1.0 + 1e-9));
    }

    /// Table models agree with their source on random interior points to
    /// within the grid's interpolation error budget.
    #[test]
    fn table_tracks_source(vgs in 0.05_f64..0.95, vds in 0.05_f64..0.95) {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 81, 81).expect("table");
        let exact = inner.ids(vgs, vds);
        let approx = table.ids(vgs, vds);
        prop_assert!(
            (exact - approx).abs() < 0.02 * exact.abs().max(1e-5),
            "({vgs:.3}, {vds:.3}): {exact:.4e} vs {approx:.4e}"
        );
    }

    /// The TFET reverse branch is monotone in gate drive and bounded by
    /// its Kane prefactor envelope.
    #[test]
    fn tfet_reverse_branch_monotone(vg in -1.2_f64..0.2) {
        let t = CntTfet::fig6();
        let i1 = t.ids(vg, -0.5).abs();
        let i2 = t.ids(vg - 0.05, -0.5).abs();
        prop_assert!(i2 >= i1 * 0.999, "more negative gate → more current");
        prop_assert!(i1 < 1e-3, "bounded");
    }

    /// The linear GNR's conductance is monotone in gate voltage and its
    /// current is antisymmetric in drain bias.
    #[test]
    fn linear_gnr_invariants(vgs in -0.5_f64..1.5, vds in 0.0_f64..1.5) {
        let g = LinearGnrFet::sub10nm_fig1();
        let c1 = g.conductance(Voltage::from_volts(vgs));
        let c2 = g.conductance(Voltage::from_volts(vgs + 0.1));
        prop_assert!(c2 >= c1);
        prop_assert!((g.ids(vgs, vds) + g.ids(vgs, -vds)).abs() < 1e-18);
    }

    /// IvCurve extraction: `bias_at_current` inverts `current_at` on
    /// strictly monotone positive curves.
    #[test]
    fn curve_inversion_roundtrip(
        decades_per_volt in 5.0_f64..20.0,
        probe in 0.1_f64..0.9,
    ) {
        let bias: Vec<f64> = (0..=100).map(|k| k as f64 / 100.0).collect();
        let current: Vec<f64> = bias
            .iter()
            .map(|v| 1e-12 * 10f64.powf(v * decades_per_volt))
            .collect();
        let curve = IvCurve::new(bias, current);
        let i_probe = curve.current_at(probe);
        let v_back = curve.bias_at_current(i_probe).expect("in range");
        prop_assert!((v_back - probe).abs() < 0.02, "{probe} → {v_back}");
    }

    /// Swing extraction on a pure exponential returns the construction
    /// slope for any slope.
    #[test]
    fn swing_extraction_is_exact(ss_mv in 40.0_f64..300.0) {
        let bias: Vec<f64> = (0..=200).map(|k| k as f64 * 0.005).collect();
        let current: Vec<f64> = bias
            .iter()
            .map(|v| 1e-12 * 10f64.powf(v / (ss_mv / 1e3)))
            .collect();
        let curve = IvCurve::new(bias, current);
        let lo = 1e-11;
        let hi = 1e-9;
        if curve.current()[curve.len() - 1] > hi * 10.0 {
            let ss = curve.swing_between(lo, hi).expect("crosses");
            prop_assert!((ss - ss_mv).abs() < 0.02 * ss_mv, "{ss} vs {ss_mv}");
        }
    }
}

//! Shared workload builders for the Criterion benchmark harness.
//!
//! Three bench binaries regenerate the paper's evaluation (see
//! `DESIGN.md` §3 for the experiment-to-bench mapping):
//!
//! * `figures` — one benchmark per paper figure/claim, timing the full
//!   regeneration of each artifact (`carbon-core::figN::run`),
//! * `solver` — scaling of the MNA circuit-simulation substrate,
//! * `montecarlo` — the §V statistics workloads and the device-model
//!   evaluation costs (live ballistic solve vs table lookup).

#![deny(missing_docs)]

pub mod compare;
pub mod serve_load;
pub mod summary;

use carbon_spice::Circuit;

/// Builds an `n`-stage resistor ladder driven by 1 V — the standard
/// linear-solver scaling workload (`2n` nodes, `2n + 1` elements).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn resistor_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ladder needs at least one stage");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 1.0);
    for i in 0..n {
        ckt.resistor(
            &format!("rs{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .expect("unique names");
        ckt.resistor(&format!("rp{i}"), &format!("n{}", i + 1), "0", 1e3)
            .expect("unique names");
    }
    ckt
}

/// Builds a diode chain of `n` junctions from a 5 V source — a
/// nonlinear Newton-convergence workload.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn diode_chain(n: usize) -> Circuit {
    assert!(n > 0, "chain needs at least one diode");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 5.0);
    ckt.resistor("r", "n0", "d0", 1e3).expect("unique");
    for i in 0..n {
        ckt.diode(
            &format!("d{i}"),
            &format!("d{i}"),
            &format!("d{}", i + 1),
            1e-15,
            1.0,
        )
        .expect("unique");
    }
    ckt.resistor("rt", &format!("d{n}"), "0", 10.0)
        .expect("unique");
    ckt
}

/// Builds an `n`-stage series-R / shunt-C ladder driven by an AC unit
/// stimulus — the sparse AC replay workload (`n + 1` node unknowns
/// plus the source branch, one capacitor per stage).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn rc_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ladder needs at least one stage");
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "n0", "0", 0.0);
    for i in 0..n {
        ckt.resistor(
            &format!("r{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .expect("unique names");
        ckt.capacitor(&format!("c{i}"), &format!("n{}", i + 1), "0", 1e-12)
            .expect("unique names");
    }
    ckt
}

/// A linear small-signal FET: `gm = 1 mS`, `gds = 10 µS` everywhere.
#[derive(Debug)]
struct LinearFet;

impl carbon_spice::FetCurve for LinearFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        1e-3 * vgs + 1e-5 * vds
    }
}

/// Builds a common-source FET amplifier with a capacitive load — the
/// small-circuit AC workload (a handful of unknowns, dense solver
/// path), whose corner the gm/gds linearization fixes analytically.
pub fn fet_cs_amp() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vin", "g", "0", 0.5);
    ckt.resistor("rl", "vdd", "d", 1e5).expect("unique names");
    ckt.capacitor("cl", "d", "0", 1e-13).expect("unique names");
    ckt.fet("m1", "d", "g", "0", std::sync::Arc::new(LinearFet))
        .expect("unique names");
    ckt
}

/// `n` log-spaced frequencies over `lo..=hi` — the grid every AC
/// bench and smoke target sweeps.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn log_freqs(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n >= 2, "a log grid needs at least two points");
    (0..n)
        .map(|k| lo * (hi / lo).powf(k as f64 / (n - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_solves() {
        let op = resistor_ladder(20).op().expect("solvable");
        assert!(op.voltage("n20").expect("node") > 0.0);
    }

    #[test]
    fn diode_chain_solves() {
        let op = diode_chain(4).op().expect("solvable");
        // Four forward drops from 5 V leave a positive tail voltage.
        let tail = op.voltage("d4").expect("node");
        assert!((0.0..5.0).contains(&tail));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn ladder_rejects_zero() {
        let _ = resistor_ladder(0);
    }

    #[test]
    fn rc_ladder_sweeps_and_rolls_off() {
        let ckt = rc_ladder(20);
        let freqs = log_freqs(10, 1e3, 1e9);
        let ac = ckt.ac_sweep("vin", &freqs).expect("sweeps");
        let mag = ac.magnitude("n20").expect("node");
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain 1");
        assert!(*mag.last().expect("points") < 1e-3, "stopband rolls off");
    }

    #[test]
    fn fet_cs_amp_has_midband_gain_and_corner() {
        let ckt = fet_cs_amp();
        let freqs = log_freqs(40, 1e3, 1e9);
        let ac = ckt.ac_sweep("vin", &freqs).expect("sweeps");
        let mag = ac.magnitude("d").expect("node");
        // |Av| = gm·(R_L ∥ 1/gds) = 1e-3·(1e5 ∥ 1e5) = 50 at low f.
        assert!((mag[0] - 50.0).abs() < 1.0, "midband |Av| = {}", mag[0]);
        assert!(
            ac.corner_frequency("d").expect("node").is_some(),
            "load cap must roll the gain off inside the grid"
        );
    }

    #[test]
    fn log_freqs_hits_both_endpoints() {
        let f = log_freqs(5, 1e3, 1e7);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f[4] - 1e7).abs() / 1e7 < 1e-12);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diode_chain_24_converges_within_twelve_cold_iterations() {
        // The solver bench's `newton_diode_chain/24` workload, observed
        // through the trace layer: a cold-start Newton solve of the
        // 24-junction chain must converge in at most 12 iterations.
        // More means the damping/limiting strategy regressed even if
        // wall-clock medians stayed inside the noise band.
        use carbon_trace::collect::Collector;

        let collector = Collector::new();
        let op = carbon_trace::with_subscriber(collector.clone(), || diode_chain(24).op());
        op.expect("solvable");

        let iters = collector.span_field("spice.newton_solve", "iters");
        assert!(!iters.is_empty(), "solve emitted no newton spans");
        for v in &iters {
            let n = v.as_u64().expect("iters is an integer field");
            assert!(n <= 12, "cold-start Newton took {n} iterations");
        }
        let converged = collector.span_field("spice.newton_solve", "converged");
        assert!(
            converged
                .iter()
                .all(|v| *v == carbon_trace::Value::Bool(true)),
            "all recorded solves converged"
        );
    }
}

//! Shared workload builders for the Criterion benchmark harness.
//!
//! Three bench binaries regenerate the paper's evaluation (see
//! `DESIGN.md` §3 for the experiment-to-bench mapping):
//!
//! * `figures` — one benchmark per paper figure/claim, timing the full
//!   regeneration of each artifact (`carbon-core::figN::run`),
//! * `solver` — scaling of the MNA circuit-simulation substrate,
//! * `montecarlo` — the §V statistics workloads and the device-model
//!   evaluation costs (live ballistic solve vs table lookup).

#![deny(missing_docs)]

pub mod compare;
pub mod serve_load;
pub mod summary;

use carbon_spice::Circuit;

/// Builds an `n`-stage resistor ladder driven by 1 V — the standard
/// linear-solver scaling workload (`2n` nodes, `2n + 1` elements).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn resistor_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ladder needs at least one stage");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 1.0);
    for i in 0..n {
        ckt.resistor(
            &format!("rs{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .expect("unique names");
        ckt.resistor(&format!("rp{i}"), &format!("n{}", i + 1), "0", 1e3)
            .expect("unique names");
    }
    ckt
}

/// Builds a diode chain of `n` junctions from a 5 V source — a
/// nonlinear Newton-convergence workload.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn diode_chain(n: usize) -> Circuit {
    assert!(n > 0, "chain needs at least one diode");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 5.0);
    ckt.resistor("r", "n0", "d0", 1e3).expect("unique");
    for i in 0..n {
        ckt.diode(
            &format!("d{i}"),
            &format!("d{i}"),
            &format!("d{}", i + 1),
            1e-15,
            1.0,
        )
        .expect("unique");
    }
    ckt.resistor("rt", &format!("d{n}"), "0", 10.0)
        .expect("unique");
    ckt
}

/// Builds an `n`-stage series-R / shunt-C ladder driven by an AC unit
/// stimulus — the sparse AC replay workload (`n + 1` node unknowns
/// plus the source branch, one capacitor per stage).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn rc_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ladder needs at least one stage");
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "n0", "0", 0.0);
    for i in 0..n {
        ckt.resistor(
            &format!("r{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .expect("unique names");
        ckt.capacitor(&format!("c{i}"), &format!("n{}", i + 1), "0", 1e-12)
            .expect("unique names");
    }
    ckt
}

/// Builds the stiff power-on-ramp deck: a PWL supply ramping 0 → 1 V
/// over 10 ns into two RC sections with time constants 1 ns and 10 µs —
/// four decades apart, so a fixed grid fine enough for the fast corner
/// wastes ~10⁴ steps on the slow tail while the LTE controller grows
/// right through it. The canonical `tran_ramp` adaptive-speedup
/// workload (horizon 50 µs, initial step 1 ns).
pub fn tran_ramp() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "vramp",
        "in",
        "0",
        carbon_spice::Waveform::Pwl(vec![(0.0, 0.0), (1e-8, 1.0)]),
    )
    .expect("unique names");
    ckt.resistor("r1", "in", "fast", 1e2).expect("unique names");
    ckt.capacitor("c1", "fast", "0", 1e-11)
        .expect("unique names");
    ckt.resistor("r2", "fast", "slow", 1e4)
        .expect("unique names");
    ckt.capacitor("c2", "slow", "0", 1e-9)
        .expect("unique names");
    ckt
}

/// Horizon of the [`tran_ramp`] workload, s.
pub const TRAN_RAMP_TSTOP: f64 = 5e-5;

/// Initial/fixed step of the [`tran_ramp`] workload, s (50 000 fixed
/// steps over the horizon).
pub const TRAN_RAMP_TSTEP: f64 = 1e-9;

/// A square-law FET pair for ring benches: n-type for `sign = 1.0`,
/// p-type mirror for `sign = -1.0`.
#[derive(Debug)]
struct SquareLaw {
    k: f64,
    vt: f64,
    sign: f64,
}

impl carbon_spice::FetCurve for SquareLaw {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let (vgs, vds) = (self.sign * vgs, self.sign * vds);
        let ids = if vds < 0.0 {
            -self.square_law(vgs - vds, -vds)
        } else {
            self.square_law(vgs, vds)
        };
        self.sign * ids
    }
}

impl SquareLaw {
    fn square_law(&self, vgs: f64, vds: f64) -> f64 {
        let vov = vgs - self.vt;
        if vov <= 0.0 {
            0.0
        } else if vds < vov {
            self.k * (vov * vds - 0.5 * vds * vds)
        } else {
            0.5 * self.k * vov * vov
        }
    }
}

/// Builds an odd-`stages` square-law CMOS ring oscillator with 10 fF
/// stage loads and a start-up kick pulse sized for the `horizon` — the
/// `tran_ring` oscillating-transient workload (`2·stages + 2` unknowns,
/// sparse path from 7 stages up).
///
/// # Panics
///
/// Panics if `stages` is even or below 3.
pub fn ring_osc(stages: usize, horizon: f64) -> Circuit {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    for s in 0..stages {
        let input = format!("n{s}");
        let output = format!("n{}", (s + 1) % stages);
        ckt.fet(
            &format!("mp{s}"),
            &output,
            &input,
            "vdd",
            std::sync::Arc::new(SquareLaw {
                k: 2e-3,
                vt: 0.3,
                sign: -1.0,
            }),
        )
        .expect("unique names");
        ckt.fet(
            &format!("mn{s}"),
            &output,
            &input,
            "0",
            std::sync::Arc::new(SquareLaw {
                k: 2e-3,
                vt: 0.3,
                sign: 1.0,
            }),
        )
        .expect("unique names");
        ckt.capacitor(&format!("cl{s}"), &output, "0", 1e-14)
            .expect("unique names");
    }
    ckt.current_source_wave(
        "ikick",
        "n0",
        "0",
        carbon_spice::Waveform::Pulse {
            low: 0.0,
            high: 6e-5,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: horizon / 50.0,
            period: 0.0,
        },
    )
    .expect("unique names");
    ckt
}

/// A linear small-signal FET: `gm = 1 mS`, `gds = 10 µS` everywhere.
#[derive(Debug)]
struct LinearFet;

impl carbon_spice::FetCurve for LinearFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        1e-3 * vgs + 1e-5 * vds
    }
}

/// Builds a common-source FET amplifier with a capacitive load — the
/// small-circuit AC workload (a handful of unknowns, dense solver
/// path), whose corner the gm/gds linearization fixes analytically.
pub fn fet_cs_amp() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vin", "g", "0", 0.5);
    ckt.resistor("rl", "vdd", "d", 1e5).expect("unique names");
    ckt.capacitor("cl", "d", "0", 1e-13).expect("unique names");
    ckt.fet("m1", "d", "g", "0", std::sync::Arc::new(LinearFet))
        .expect("unique names");
    ckt
}

/// FNV-1a 64-bit hash — the digest every deterministic smoke target
/// prints so `ci.sh` can diff runs across `CARBON_THREADS` with one
/// line of shell. The implementation now lives in `carbon-json`
/// (it also derives the serve cache's canonical job keys); this
/// re-export keeps the historical `carbon_bench::Fnv` path working.
pub use carbon_json::Fnv;

/// `n` log-spaced frequencies over `lo..=hi` — the grid every AC
/// bench and smoke target sweeps.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn log_freqs(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n >= 2, "a log grid needs at least two points");
    (0..n)
        .map(|k| lo * (hi / lo).powf(k as f64 / (n - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_solves() {
        let op = resistor_ladder(20).op().expect("solvable");
        assert!(op.voltage("n20").expect("node") > 0.0);
    }

    #[test]
    fn diode_chain_solves() {
        let op = diode_chain(4).op().expect("solvable");
        // Four forward drops from 5 V leave a positive tail voltage.
        let tail = op.voltage("d4").expect("node");
        assert!((0.0..5.0).contains(&tail));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn ladder_rejects_zero() {
        let _ = resistor_ladder(0);
    }

    #[test]
    fn rc_ladder_sweeps_and_rolls_off() {
        let ckt = rc_ladder(20);
        let freqs = log_freqs(10, 1e3, 1e9);
        let ac = ckt.ac_sweep("vin", &freqs).expect("sweeps");
        let mag = ac.magnitude("n20").expect("node");
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain 1");
        assert!(*mag.last().expect("points") < 1e-3, "stopband rolls off");
    }

    #[test]
    fn fet_cs_amp_has_midband_gain_and_corner() {
        let ckt = fet_cs_amp();
        let freqs = log_freqs(40, 1e3, 1e9);
        let ac = ckt.ac_sweep("vin", &freqs).expect("sweeps");
        let mag = ac.magnitude("d").expect("node");
        // |Av| = gm·(R_L ∥ 1/gds) = 1e-3·(1e5 ∥ 1e5) = 50 at low f.
        assert!((mag[0] - 50.0).abs() < 1.0, "midband |Av| = {}", mag[0]);
        assert!(
            ac.corner_frequency("d").expect("node").is_some(),
            "load cap must roll the gain off inside the grid"
        );
    }

    #[test]
    fn tran_ramp_is_stiff_and_adaptive_skips_the_tail() {
        let fixed_steps = (TRAN_RAMP_TSTOP / TRAN_RAMP_TSTEP).round() as usize;
        let tran = tran_ramp()
            .transient_adaptive(TRAN_RAMP_TSTEP, TRAN_RAMP_TSTOP)
            .expect("integrates");
        let slow = tran.voltages("slow").expect("node");
        assert!(
            (slow.last().expect("points") - 1.0).abs() < 0.01,
            "slow node settles to the rail"
        );
        // The whole point of the workload: the LTE controller must cut
        // at least an order of magnitude off the 50 000-step fixed grid.
        assert!(
            tran.accepted_steps() * 10 < fixed_steps,
            "adaptive took {} steps vs {fixed_steps} fixed",
            tran.accepted_steps()
        );
    }

    #[test]
    fn ring_osc_oscillates_under_both_methods() {
        let horizon = 2e-9;
        let crossings = |tran: &carbon_spice::TranResult| {
            let t = tran.times();
            let v = tran.voltages("n0").expect("node");
            (1..v.len())
                .filter(|&k| t[k] > horizon * 0.25 && v[k - 1] < 0.5 && v[k] >= 0.5)
                .count()
        };
        let fixed = ring_osc(3, horizon)
            .transient(horizon / 2000.0, horizon)
            .expect("integrates");
        assert!(crossings(&fixed) >= 3, "fixed run must ring");
        let adaptive = ring_osc(3, horizon)
            .transient_adaptive(horizon / 2000.0, horizon)
            .expect("integrates");
        assert!(crossings(&adaptive) >= 3, "adaptive run must ring");
    }

    #[test]
    fn log_freqs_hits_both_endpoints() {
        let f = log_freqs(5, 1e3, 1e7);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f[4] - 1e7).abs() / 1e7 < 1e-12);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diode_chain_24_converges_within_twelve_cold_iterations() {
        // The solver bench's `newton_diode_chain/24` workload, observed
        // through the trace layer: a cold-start Newton solve of the
        // 24-junction chain must converge in at most 12 iterations.
        // More means the damping/limiting strategy regressed even if
        // wall-clock medians stayed inside the noise band.
        use carbon_trace::collect::Collector;

        let collector = Collector::new();
        let op = carbon_trace::with_subscriber(collector.clone(), || diode_chain(24).op());
        op.expect("solvable");

        let iters = collector.span_field("spice.newton_solve", "iters");
        assert!(!iters.is_empty(), "solve emitted no newton spans");
        for v in &iters {
            let n = v.as_u64().expect("iters is an integer field");
            assert!(n <= 12, "cold-start Newton took {n} iterations");
        }
        let converged = collector.span_field("spice.newton_solve", "converged");
        assert!(
            converged
                .iter()
                .all(|v| *v == carbon_trace::Value::Bool(true)),
            "all recorded solves converged"
        );
    }
}

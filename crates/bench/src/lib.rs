//! Shared workload builders for the Criterion benchmark harness.
//!
//! Three bench binaries regenerate the paper's evaluation (see
//! `DESIGN.md` §3 for the experiment-to-bench mapping):
//!
//! * `figures` — one benchmark per paper figure/claim, timing the full
//!   regeneration of each artifact (`carbon-core::figN::run`),
//! * `solver` — scaling of the MNA circuit-simulation substrate,
//! * `montecarlo` — the §V statistics workloads and the device-model
//!   evaluation costs (live ballistic solve vs table lookup).

#![deny(missing_docs)]

pub mod compare;
pub mod summary;

use carbon_spice::Circuit;

/// Builds an `n`-stage resistor ladder driven by 1 V — the standard
/// linear-solver scaling workload (`2n` nodes, `2n + 1` elements).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn resistor_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ladder needs at least one stage");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 1.0);
    for i in 0..n {
        ckt.resistor(
            &format!("rs{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .expect("unique names");
        ckt.resistor(&format!("rp{i}"), &format!("n{}", i + 1), "0", 1e3)
            .expect("unique names");
    }
    ckt
}

/// Builds a diode chain of `n` junctions from a 5 V source — a
/// nonlinear Newton-convergence workload.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn diode_chain(n: usize) -> Circuit {
    assert!(n > 0, "chain needs at least one diode");
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 5.0);
    ckt.resistor("r", "n0", "d0", 1e3).expect("unique");
    for i in 0..n {
        ckt.diode(
            &format!("d{i}"),
            &format!("d{i}"),
            &format!("d{}", i + 1),
            1e-15,
            1.0,
        )
        .expect("unique");
    }
    ckt.resistor("rt", &format!("d{n}"), "0", 10.0)
        .expect("unique");
    ckt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_solves() {
        let op = resistor_ladder(20).op().expect("solvable");
        assert!(op.voltage("n20").expect("node") > 0.0);
    }

    #[test]
    fn diode_chain_solves() {
        let op = diode_chain(4).op().expect("solvable");
        // Four forward drops from 5 V leave a positive tail voltage.
        let tail = op.voltage("d4").expect("node");
        assert!((0.0..5.0).contains(&tail));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn ladder_rejects_zero() {
        let _ = resistor_ladder(0);
    }

    #[test]
    fn diode_chain_24_converges_within_twelve_cold_iterations() {
        // The solver bench's `newton_diode_chain/24` workload, observed
        // through the trace layer: a cold-start Newton solve of the
        // 24-junction chain must converge in at most 12 iterations.
        // More means the damping/limiting strategy regressed even if
        // wall-clock medians stayed inside the noise band.
        use carbon_trace::collect::Collector;

        let collector = Collector::new();
        let op = carbon_trace::with_subscriber(collector.clone(), || diode_chain(24).op());
        op.expect("solvable");

        let iters = collector.span_field("spice.newton_solve", "iters");
        assert!(!iters.is_empty(), "solve emitted no newton spans");
        for v in &iters {
            let n = v.as_u64().expect("iters is an integer field");
            assert!(n <= 12, "cold-start Newton took {n} iterations");
        }
        let converged = collector.span_field("spice.newton_solve", "converged");
        assert!(
            converged
                .iter()
                .all(|v| *v == carbon_trace::Value::Bool(true)),
            "all recorded solves converged"
        );
    }
}

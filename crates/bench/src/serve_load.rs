//! `carbon-bench serve-load`: a load generator for the carbon-serve
//! job service.
//!
//! Starts an in-process server on loopback, drives it from N
//! concurrent connections with a deterministic mixed job distribution,
//! and reports throughput and per-kind latency percentiles. Latency
//! rows go to stdout in the compare-JSONL schema (so the existing
//! `carbon-bench compare` tooling can consume them); the human summary
//! goes to stderr.
//!
//! With `digest: true`, the report carries an FNV-1a 64 digest of the
//! (id-sorted) successful response bodies. Responses are deterministic
//! at the service boundary, so `ci.sh` diffs this digest across
//! `CARBON_THREADS` values to catch any scheduling leak into the wire
//! format.
//!
//! Two knobs exercise the server's response cache:
//!
//! - `repeat_frac` switches to a parameter-varied workload in which
//!   each job is, with that probability, a deterministic xoshiro re-pick
//!   of an earlier job's body (same `job` field, fresh `id`) — a repeat
//!   hits the cache while every non-repeat deck is genuinely cold.
//!   At `0.0` (the default) the classic mixed distribution is used
//!   unchanged.
//! - `passes` replays the identical job schedule that many times over
//!   one server; pass 2 onward is an all-warm sweep of pass 1's keys.
//!   Ids repeat across passes, so per-pass digests must be
//!   byte-identical — the report carries one digest per pass.
//!
//! Cache observability rows: `serve/cache_hits` and
//! `serve/cache_misses` (lifetime server totals) and
//! `serve/cache_hit_rate` (final pass only, in **per-mille** — the
//! compare-JSONL schema is integer-valued). The run fails if the
//! server's `hits + misses != accepted`, so the counters can never
//! silently drift from admissions.
//!
//! Client-observed latency rows (`serve/<kind>/latency_ns`) mix hits
//! and misses; the *server-side* histograms keep them apart —
//! `serve.latency_ns.<kind>` records only solved (miss) requests and
//! `serve.cache.hit_latency_ns` only hits — so cached repeats never
//! skew solve-latency baselines. Fast-path `ping`/`stats` calls have
//! no latency histogram at all. Both facts are asserted in this
//! module's tests.
//!
//! Each connection sends one `ping` warmup per pass before its timed
//! jobs (never sampled or digested), and after the load drains a fresh
//! client pulls the server's `stats` snapshot; its counters, gauges,
//! and histogram percentiles land in the JSONL as `serve/stats/*` rows
//! so CI can gate on server-side health.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use carbon_json::Json;
use carbon_runtime::rng::{RngCore, Xoshiro256pp};
use carbon_serve::{Client, Server, ServerConfig, DEFAULT_CACHE_BYTES};

use crate::Fnv;

const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";
const DIVIDER_DECK: &str =
    "* loaded divider\nV1 top 0 2\nR1 top mid 2k\nR2 mid 0 2k\nC1 mid 0 10n\n.end\n";

/// Seed of the repeat-schedule RNG: fixed, so the same
/// `(jobs, repeat_frac)` pair always produces the same schedule.
const SCHEDULE_SEED: u64 = 0x5eed_cafe_0b5e_55ed;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total jobs across all connections (per pass).
    pub jobs: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server queue depth (admission bound).
    pub queue_depth: usize,
    /// Server response-cache byte budget (`0` disables caching).
    pub cache_bytes: u64,
    /// Times the identical job schedule is replayed over one server.
    pub passes: usize,
    /// Probability that a job re-issues an earlier job's body
    /// (deterministic xoshiro pick). `0.0` keeps the classic mixed
    /// distribution.
    pub repeat_frac: f64,
    /// Compute the response-body digest (one per pass).
    pub digest: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 8,
            jobs: 1000,
            workers: carbon_runtime::Executor::new().threads(),
            queue_depth: 64,
            cache_bytes: DEFAULT_CACHE_BYTES,
            passes: 1,
            repeat_frac: 0.0,
            digest: false,
        }
    }
}

/// One job's outcome as seen by its client.
struct Sample {
    id: usize,
    kind: &'static str,
    latency_ns: u64,
    status: String,
    body: Vec<u8>,
}

/// Aggregated results of a load run.
pub struct LoadReport {
    /// compare-JSONL rows (one per job kind plus `serve/all`).
    pub jsonl: String,
    /// Human-readable summary.
    pub summary: String,
    /// FNV-1a 64 digest over the *final* pass's id-sorted `ok`
    /// response bodies (when requested).
    pub digest: Option<u64>,
    /// One digest per pass, in pass order (when requested). Ids repeat
    /// across passes, so these must all be equal on a healthy server.
    pub pass_digests: Vec<u64>,
    /// Count of `busy` rejections observed by clients (all passes).
    pub busy: u64,
    /// Count of responses that were neither `ok` nor `busy`.
    pub failed: u64,
    /// Jobs the server timed out (from the server's own counters).
    pub timed_out: u64,
    /// Lifetime cache hits from the server's counters.
    pub cache_hits: u64,
    /// Lifetime cache misses from the server's counters.
    pub cache_misses: u64,
    /// Final-pass hit rate in per-mille (hits ÷ admitted, × 1000).
    pub hit_rate_permille: u64,
}

/// The deterministic mixed distribution: job `i`'s request body.
/// Every 97th job is a full `fig7` campaign; the rest cycle through
/// the four circuit analyses over two decks.
fn request_body(i: usize) -> (&'static str, String) {
    let (kind, job) = if i % 97 == 96 {
        ("fig7", Json::obj().push("kind", "fig7"))
    } else {
        match i % 5 {
            0 => (
                "op",
                Json::obj()
                    .push("kind", "op")
                    .push("deck", RC_DECK)
                    .push("nodes", nodes(&["in", "out"])),
            ),
            1 => (
                "dc_sweep",
                Json::obj()
                    .push("kind", "dc_sweep")
                    .push("deck", DIVIDER_DECK)
                    .push("source", "V1")
                    .push("from", 0.0)
                    .push("to", 2.0)
                    .push("step", 0.25)
                    .push("nodes", nodes(&["mid"])),
            ),
            2 => (
                "ac_sweep",
                Json::obj()
                    .push("kind", "ac_sweep")
                    .push("deck", RC_DECK)
                    .push("source", "V1")
                    .push("fstart", 1.0)
                    .push("fstop", 1e5)
                    .push("points_per_decade", 5)
                    .push("nodes", nodes(&["out"])),
            ),
            3 => (
                "transient",
                Json::obj()
                    .push("kind", "transient")
                    .push("deck", RC_DECK)
                    .push("tstep", 1e-5)
                    .push("tstop", 1e-3)
                    .push("nodes", nodes(&["out"])),
            ),
            _ => (
                "op",
                Json::obj()
                    .push("kind", "op")
                    .push("deck", DIVIDER_DECK)
                    .push("nodes", nodes(&["mid", "top"])),
            ),
        }
    };
    (kind, Json::obj().push("id", i).push("job", job).render())
}

/// A parameter-varied job for the `repeat_frac` workload: every slot
/// gets a distinct deck (the divider's upper resistor encodes the slot
/// index), so a non-repeat job can never accidentally share a cache
/// key with another slot.
fn unique_body(i: usize) -> (&'static str, Json) {
    let deck = format!(
        "* unique divider {i}\nV1 top 0 2\nR1 top mid {}\nR2 mid 0 2k\nC1 mid 0 10n\n.end\n",
        1000 + i
    );
    match i % 4 {
        0 => (
            "op",
            Json::obj()
                .push("kind", "op")
                .push("deck", deck)
                .push("nodes", nodes(&["mid"])),
        ),
        1 => (
            "dc_sweep",
            Json::obj()
                .push("kind", "dc_sweep")
                .push("deck", deck)
                .push("source", "V1")
                .push("from", 0.0)
                .push("to", 2.0)
                .push("step", 0.25)
                .push("nodes", nodes(&["mid"])),
        ),
        2 => (
            "ac_sweep",
            Json::obj()
                .push("kind", "ac_sweep")
                .push("deck", deck)
                .push("source", "V1")
                .push("fstart", 1.0)
                .push("fstop", 1e5)
                .push("points_per_decade", 5)
                .push("nodes", nodes(&["mid"])),
        ),
        _ => (
            "transient",
            Json::obj()
                .push("kind", "transient")
                .push("deck", deck)
                .push("tstep", 1e-5)
                .push("tstop", 1e-3)
                .push("nodes", nodes(&["mid"])),
        ),
    }
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the generator.
fn u01(rng: &mut Xoshiro256pp) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Builds one pass's rendered request bodies. With `repeat_frac == 0`
/// this is exactly the classic [`request_body`] distribution; above
/// zero, each slot is (with that probability) a re-issue of an earlier
/// slot's `job` field under a fresh id, the pick made by a
/// fixed-seeded xoshiro so the schedule is a pure function of
/// `(jobs, repeat_frac)`.
fn build_schedule(jobs: usize, repeat_frac: f64) -> Vec<(&'static str, String)> {
    if repeat_frac <= 0.0 {
        return (0..jobs).map(request_body).collect();
    }
    let mut rng = Xoshiro256pp::seed_from_u64(SCHEDULE_SEED);
    let mut slots: Vec<(&'static str, Json)> = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let repeat = i > 0 && u01(&mut rng) < repeat_frac;
        let slot = if repeat {
            let j = usize::try_from(rng.next_u64() % i as u64).expect("index fits");
            slots[j].clone()
        } else {
            unique_body(i)
        };
        slots.push(slot);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, (kind, job))| (kind, Json::obj().push("id", i).push("job", job).render()))
        .collect()
}

fn nodes(names: &[&str]) -> Json {
    Json::Arr(names.iter().map(|n| Json::Str((*n).to_owned())).collect())
}

/// Runs the load and aggregates the report.
///
/// # Errors
///
/// Returns a rendered error for bind failures, for any protocol error
/// (a client that fails to get a response, a non-JSON body, a missing
/// id), and for a cache accounting violation
/// (`hits + misses != accepted`).
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth,
            default_timeout_ms: None,
            cache_bytes: config.cache_bytes,
        },
    )
    .map_err(|e| format!("cannot bind loopback server: {e}"))?;
    let addr = server.local_addr();
    let connections = config.connections.max(1);
    let passes = config.passes.max(1);
    let schedule = build_schedule(config.jobs, config.repeat_frac);

    let started = Instant::now();
    let mut samples: Vec<Sample> = Vec::with_capacity(config.jobs * passes);
    let mut pass_digests: Vec<u64> = Vec::new();
    let mut hit_rate_permille = 0u64;
    let mut before = server.stats();
    for _pass in 0..passes {
        let schedule = &schedule;
        let pass_samples: Vec<Sample> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|c| {
                    scope.spawn(move || -> Result<Vec<Sample>, String> {
                        let mut client = Client::connect(addr)
                            .map_err(|e| format!("connection {c}: connect failed: {e}"))?;
                        warmup(&mut client, c)?;
                        (c..schedule.len())
                            .step_by(connections)
                            .map(|i| one_call(&mut client, i, schedule))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load thread panicked"))
                .collect::<Result<Vec<_>, _>>()
                .map(|per_conn| per_conn.into_iter().flatten().collect())
        })?;
        if config.digest {
            pass_digests.push(digest_of(&pass_samples));
        }
        let after = server.stats();
        let admitted = after.accepted - before.accepted;
        let hits = after.cache_hits - before.cache_hits;
        hit_rate_permille = (hits * 1000).checked_div(admitted).unwrap_or(0);
        before = after;
        samples.extend(pass_samples);
    }
    let elapsed = started.elapsed();
    let stats_snapshot = fetch_stats(addr)?;
    let stats = server.shutdown();

    // The classification invariant: every admitted job was counted as
    // exactly one of hit/miss. A drift here means the worker path lost
    // track of a ticket.
    if stats.cache_hits + stats.cache_misses != stats.accepted {
        return Err(format!(
            "cache accounting violated: hits {} + misses {} != accepted {}",
            stats.cache_hits, stats.cache_misses, stats.accepted
        ));
    }

    let mut by_kind: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut all = Vec::with_capacity(samples.len());
    let mut busy = 0u64;
    let mut failed = 0u64;
    for s in &samples {
        match s.status.as_str() {
            "ok" => {
                by_kind.entry(s.kind).or_default().push(s.latency_ns);
                all.push(s.latency_ns);
            }
            "busy" => busy += 1,
            _ => failed += 1,
        }
    }

    let mut jsonl = String::new();
    for (kind, mut lat) in by_kind {
        lat.sort_unstable();
        jsonl_row(&mut jsonl, &format!("serve/{kind}/latency_ns"), &lat);
    }
    all.sort_unstable();
    if !all.is_empty() {
        jsonl_row(&mut jsonl, "serve/all/latency_ns", &all);
    }
    // Rejection and deadline counts go out even when zero: CI gates on
    // `timed_out == 0`, and a row that vanishes on success would read
    // as missing data rather than a clean run.
    value_row(&mut jsonl, "serve/rejected_busy", stats.rejected_busy);
    value_row(&mut jsonl, "serve/timed_out", stats.timed_out);
    // Cache health: lifetime hit/miss totals, and the final pass's hit
    // rate in per-mille (the row schema is integer-valued).
    value_row(&mut jsonl, "serve/cache_hits", stats.cache_hits);
    value_row(&mut jsonl, "serve/cache_misses", stats.cache_misses);
    value_row(&mut jsonl, "serve/cache_hit_rate", hit_rate_permille);
    stats_rows(&mut jsonl, &stats_snapshot);

    let throughput = samples.len() as f64 / elapsed.as_secs_f64();
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "serve-load: {} jobs over {} connection(s), {} worker(s), queue depth {}, {} pass(es)",
        samples.len(),
        connections,
        config.workers.max(1),
        config.queue_depth,
        passes,
    );
    let _ = writeln!(
        summary,
        "  wall {:.3} s, throughput {throughput:.0} jobs/s",
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        summary,
        "  ok {} busy {busy} failed {failed} | server: accepted {} rejected {} timed-out {} \
         protocol-errors {}",
        all.len(),
        stats.accepted,
        stats.rejected_busy,
        stats.timed_out,
        stats.protocol_errors,
    );
    let _ = writeln!(
        summary,
        "  cache: hits {} misses {} coalesced {} (final-pass hit rate {}.{:01}%)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_coalesced,
        hit_rate_permille / 10,
        hit_rate_permille % 10,
    );
    if !all.is_empty() {
        let _ = writeln!(
            summary,
            "  latency p50 {} µs  p90 {} µs  p99 {} µs  max {} µs",
            percentile(&all, 50.0) / 1_000,
            percentile(&all, 90.0) / 1_000,
            percentile(&all, 99.0) / 1_000,
            all.last().copied().unwrap_or(0) / 1_000,
        );
    }

    if stats.protocol_errors > 0 {
        return Err(format!(
            "server counted {} protocol error(s)",
            stats.protocol_errors
        ));
    }
    if failed > 0 {
        return Err(format!("{failed} job(s) answered neither ok nor busy"));
    }

    Ok(LoadReport {
        jsonl,
        summary,
        digest: pass_digests.last().copied(),
        pass_digests,
        busy,
        failed,
        timed_out: stats.timed_out,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        hit_rate_permille,
    })
}

/// FNV-1a 64 over one pass's id-sorted `ok` response bodies.
fn digest_of(samples: &[Sample]) -> u64 {
    let mut ok: Vec<(usize, &[u8])> = samples
        .iter()
        .filter(|s| s.status == "ok")
        .map(|s| (s.id, s.body.as_slice()))
        .collect();
    ok.sort_unstable_by_key(|(id, _)| *id);
    let mut h = Fnv::new();
    for (id, body) in ok {
        h.write(&(id as u64).to_be_bytes());
        h.write(body);
        h.write(b"\n");
    }
    h.finish()
}

/// One `ping` on a fresh connection before its timed jobs: absorbs
/// connection setup and lazy-init costs outside the measurement
/// window. Never sampled, never digested.
fn warmup(client: &mut Client, connection: usize) -> Result<(), String> {
    let request = Json::obj()
        .push("id", format!("warmup-{connection}"))
        .push("job", Json::obj().push("kind", "ping"));
    let response = client
        .call(&request)
        .map_err(|e| format!("connection {connection}: warmup ping failed: {e}"))?;
    match response.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(()),
        _ => Err(format!(
            "connection {connection}: warmup ping answered {}",
            response.render()
        )),
    }
}

/// Pulls the server's `stats` snapshot over a fresh connection and
/// returns the `result` object.
fn fetch_stats(addr: std::net::SocketAddr) -> Result<Json, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("stats fetch: connect failed: {e}"))?;
    let request = Json::obj()
        .push("id", "stats")
        .push("job", Json::obj().push("kind", "stats"));
    let response = client
        .call(&request)
        .map_err(|e| format!("stats fetch: {e}"))?;
    if response.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("stats fetch answered {}", response.render()));
    }
    response
        .get("result")
        .cloned()
        .ok_or_else(|| "stats response without result".to_owned())
}

/// Flattens the server's stats snapshot into compare-JSONL rows:
/// `serve/stats/<name>` for every counter and gauge, and
/// `serve/stats/<name>/p50|p90|p99|count` for every histogram.
fn stats_rows(out: &mut String, snapshot: &Json) {
    for section in ["counters", "gauges"] {
        if let Some(Json::Obj(fields)) = snapshot.get(section) {
            for (name, value) in fields {
                value_row(
                    out,
                    &format!("serve/stats/{name}"),
                    value.as_u64().unwrap_or(0),
                );
            }
        }
    }
    if let Some(Json::Obj(fields)) = snapshot.get("histograms") {
        for (name, hist) in fields {
            for stat in ["p50", "p90", "p99", "count"] {
                value_row(
                    out,
                    &format!("serve/stats/{name}/{stat}"),
                    hist.get(stat).and_then(Json::as_u64).unwrap_or(0),
                );
            }
        }
    }
}

fn one_call(
    client: &mut Client,
    i: usize,
    schedule: &[(&'static str, String)],
) -> Result<Sample, String> {
    let (kind, body) = &schedule[i];
    let t0 = Instant::now();
    let raw = client
        .call_raw(body.as_bytes())
        .map_err(|e| format!("job {i}: {e}"))?;
    let latency_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let text = std::str::from_utf8(&raw).map_err(|_| format!("job {i}: non-UTF-8 response"))?;
    let status = carbon_json::string_field(text, "status")
        .ok_or_else(|| format!("job {i}: response without status: {text}"))?;
    Ok(Sample {
        id: i,
        kind,
        latency_ns,
        status,
        body: raw,
    })
}

/// A single-value row in the compare-JSONL schema: median = min = max
/// = the value, one iteration. Used for counts and snapshot scalars.
fn value_row(out: &mut String, id: &str, value: u64) {
    let _ = writeln!(
        out,
        "{{\"id\":\"{}\",\"median_ns\":{value},\"min_ns\":{value},\"max_ns\":{value},\"iters\":1}}",
        carbon_json::escape(id),
    );
}

fn jsonl_row(out: &mut String, id: &str, sorted: &[u64]) {
    let _ = writeln!(
        out,
        "{{\"id\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iters\":{}}}",
        carbon_json::escape(id),
        percentile(sorted, 50.0),
        sorted.first().copied().unwrap_or(0),
        sorted.last().copied().unwrap_or(0),
        sorted.len(),
    );
}

/// Nearest-rank percentile on a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_deterministic_and_mixed() {
        let kinds: Vec<&str> = (0..200).map(|i| request_body(i).0).collect();
        assert_eq!(
            kinds,
            (0..200).map(|i| request_body(i).0).collect::<Vec<_>>()
        );
        for kind in ["op", "dc_sweep", "ac_sweep", "transient", "fig7"] {
            assert!(kinds.contains(&kind), "missing {kind}");
        }
        let (_, body) = request_body(3);
        assert!(body.contains("\"id\":3"));
    }

    #[test]
    fn repeat_schedule_is_deterministic_and_actually_repeats() {
        let a = build_schedule(100, 0.5);
        let b = build_schedule(100, 0.5);
        assert_eq!(
            a.iter().map(|(_, body)| body).collect::<Vec<_>>(),
            b.iter().map(|(_, body)| body).collect::<Vec<_>>(),
            "same (jobs, repeat_frac) => same schedule"
        );
        // Strip the per-slot id: what remains is the job body a cache
        // key is built from. With repeat_frac 0.5 there must be far
        // fewer distinct bodies than slots, but more than one.
        let distinct: std::collections::BTreeSet<String> = a
            .iter()
            .map(|(_, body)| {
                let json = Json::parse(body).unwrap();
                json.get("job").unwrap().render()
            })
            .collect();
        assert!(distinct.len() < 85, "repeats occurred: {}", distinct.len());
        assert!(
            distinct.len() > 20,
            "cold jobs occurred: {}",
            distinct.len()
        );
        // Zero repeat_frac is byte-for-byte the classic distribution.
        let classic = build_schedule(10, 0.0);
        for (i, (kind, body)) in classic.iter().enumerate() {
            let (k, b) = request_body(i);
            assert_eq!((*kind, body.as_str()), (k, b.as_str()));
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [10, 20, 30, 40];
        assert_eq!(percentile(&v, 50.0), 20);
        assert_eq!(percentile(&v, 99.0), 40);
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        let mut h = Fnv::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn small_load_runs_clean() {
        let report = run(&LoadConfig {
            connections: 2,
            jobs: 20,
            workers: 2,
            queue_depth: 32,
            digest: true,
            ..LoadConfig::default()
        })
        .expect("load run succeeds");
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
        assert!(report.jsonl.contains("serve/all/latency_ns"));
        assert!(report.digest.is_some());
        assert_eq!(report.pass_digests.len(), 1);
        // Count rows are present even at zero, and the server-side
        // snapshot is flattened into serve/stats/* rows.
        assert!(report.jsonl.contains("\"id\":\"serve/rejected_busy\""));
        assert!(report.jsonl.contains("\"id\":\"serve/timed_out\""));
        assert!(report.jsonl.contains("\"id\":\"serve/cache_hits\""));
        assert!(report.jsonl.contains("\"id\":\"serve/cache_misses\""));
        assert!(report.jsonl.contains("\"id\":\"serve/cache_hit_rate\""));
        assert!(report
            .jsonl
            .contains("\"id\":\"serve/stats/serve.accepted\""));
        assert!(report
            .jsonl
            .contains("\"id\":\"serve/stats/serve.latency_ns.op/p50\""));
        assert!(report
            .jsonl
            .contains("\"id\":\"serve/stats/serve.latency_ns.op/count\""));
        // The warmup pings were answered but never sampled: 20 jobs
        // from 2 connections means exactly 20 samples, and the server
        // counted one ping per connection plus the stats fetch.
        assert!(report.jsonl.contains("\"id\":\"serve/stats/serve.ping\""));
        let accepted = row_value(&report.jsonl, "serve/stats/serve.accepted");
        let ping = row_value(&report.jsonl, "serve/stats/serve.ping");
        let stats_calls = row_value(&report.jsonl, "serve/stats/serve.stats");
        assert_eq!(accepted + report.busy, 20);
        assert_eq!(ping, 2);
        assert_eq!(stats_calls, 1);
    }

    #[test]
    fn second_pass_is_all_hits_and_histograms_stay_separate() {
        let report = run(&LoadConfig {
            connections: 2,
            jobs: 24,
            workers: 2,
            queue_depth: 64,
            passes: 2,
            repeat_frac: 0.5,
            digest: true,
            ..LoadConfig::default()
        })
        .expect("load run succeeds");
        // Replayed schedule, same ids: per-pass digests byte-identical.
        assert_eq!(report.pass_digests.len(), 2);
        assert_eq!(
            report.pass_digests[0], report.pass_digests[1],
            "cold and warm passes must produce byte-identical responses"
        );
        // Every key in pass 2 was inserted during pass 1 (queue depth
        // covers the whole set, so nothing was rejected): all 24 warm
        // jobs hit, which the per-mille rate reports exactly.
        assert_eq!(report.hit_rate_permille, 1000);
        assert!(report.cache_hits >= 24);
        assert_eq!(
            report.cache_hits + report.cache_misses,
            48,
            "every admitted job classified exactly once"
        );
        // Satellite invariant: hits land only in the dedicated
        // histogram, misses only in the per-kind solve histograms —
        // so cached repeats cannot skew solve-latency baselines.
        let hit_count = row_value(
            &report.jsonl,
            "serve/stats/serve.cache.hit_latency_ns/count",
        );
        assert_eq!(hit_count, report.cache_hits);
        let solve_count: u64 = [
            "op",
            "dc_sweep",
            "ac_sweep",
            "transient",
            "fig2",
            "fig5",
            "fig7",
        ]
        .iter()
        .map(|kind| {
            row_value(
                &report.jsonl,
                &format!("serve/stats/serve.latency_ns.{kind}/count"),
            )
        })
        .sum();
        assert_eq!(solve_count, report.cache_misses);
        // And the fast-path kinds have no latency histogram at all.
        assert!(!report.jsonl.contains("serve.latency_ns.ping"));
        assert!(!report.jsonl.contains("serve.latency_ns.stats"));
    }

    #[test]
    fn disabled_cache_still_runs_clean_with_zero_hits() {
        let report = run(&LoadConfig {
            connections: 2,
            jobs: 12,
            workers: 2,
            queue_depth: 32,
            cache_bytes: 0,
            passes: 2,
            repeat_frac: 0.9,
            digest: true,
        })
        .expect("load run succeeds");
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_misses, 24, "all jobs solved");
        assert_eq!(report.hit_rate_permille, 0);
        assert_eq!(report.pass_digests[0], report.pass_digests[1]);
    }

    /// Extracts `median_ns` from the row with the given id.
    fn row_value(jsonl: &str, id: &str) -> u64 {
        let needle = format!("\"id\":\"{id}\"");
        let line = jsonl
            .lines()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no row {id}"));
        carbon_json::u64_field(line, "median_ns").unwrap_or_else(|| panic!("bad row: {line}"))
    }
}

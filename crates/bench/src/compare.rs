//! Regression comparison of two benchmark JSONL snapshots.
//!
//! The harness ([`carbon_runtime::bench`]) appends one JSON object per
//! benchmark to `target/carbon-bench/<group>.jsonl`. This module parses
//! those lines (the writer emits a fixed, flat shape — no external JSON
//! dependency needed) and diffs two snapshots: the `carbon-bench`
//! binary's `compare` subcommand exits nonzero when any benchmark's
//! median regresses past a threshold, which `ci.sh` can opt into via
//! `CARBON_BENCH_COMPARE=1`.

use std::collections::BTreeMap;
use std::fmt;

/// One benchmark record parsed from a JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `"solver/newton_diode_chain/24"`.
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u64,
    /// Fastest iteration, ns — lower edge of the run's noise band
    /// (absent in snapshots from harnesses that did not record it).
    pub min_ns: Option<u64>,
    /// Slowest iteration, ns — upper edge of the run's noise band.
    pub max_ns: Option<u64>,
}

/// Error parsing a benchmark JSONL snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

// The flat-field scanners moved to the shared `carbon-json` module
// (they are also what `carbon-serve`'s tooling reads frames with);
// re-exported here so the rest of the crate keeps its call sites.
pub(crate) use carbon_json::{string_field, u64_field};

/// Parses a benchmark snapshot (one JSON object per non-empty line).
///
/// # Errors
///
/// Returns [`ParseError`] for any line missing the `id` or `median_ns`
/// fields.
pub fn parse_jsonl(text: &str) -> Result<Vec<BenchRecord>, ParseError> {
    let mut records = Vec::new();
    for (k, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = string_field(line, "id").ok_or_else(|| ParseError {
            line: k + 1,
            reason: "missing \"id\" string field".into(),
        })?;
        let median_ns = u64_field(line, "median_ns").ok_or_else(|| ParseError {
            line: k + 1,
            reason: "missing \"median_ns\" integer field".into(),
        })?;
        records.push(BenchRecord {
            id,
            median_ns,
            min_ns: u64_field(line, "min_ns"),
            max_ns: u64_field(line, "max_ns"),
        });
    }
    Ok(records)
}

/// One row of a snapshot comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark id present in both snapshots.
    pub id: String,
    /// Baseline median, ns.
    pub old_ns: u64,
    /// Candidate median, ns.
    pub new_ns: u64,
    /// Relative change, `new/old − 1` (positive = slower).
    pub change: f64,
    /// Baseline noise band (min..max over the baseline run's
    /// iterations), when the baseline snapshot recorded one.
    pub old_band: Option<(u64, u64)>,
}

impl Delta {
    /// Whether this delta is a regression at `threshold`: the median
    /// must have grown past the threshold **and** landed outside the
    /// baseline's own min..max noise band (when one was recorded).
    /// A noisy benchmark whose baseline band already covers the new
    /// median is jitter, not a regression.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.change > threshold && self.old_band.is_none_or(|(_, max)| self.new_ns > max)
    }
}

/// Outcome of diffing two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-benchmark deltas for ids present in both snapshots, in
    /// baseline order.
    pub deltas: Vec<Delta>,
    /// Ids only in the baseline (removed benchmarks).
    pub only_old: Vec<String>,
    /// Ids only in the candidate (new benchmarks).
    pub only_new: Vec<String>,
    /// Regression threshold the comparison was run with.
    pub threshold: f64,
}

impl Comparison {
    /// Deltas whose median regressed beyond the threshold *and* the
    /// baseline's noise band (see [`Delta::regressed`]).
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>12} {:>12} {:>9}",
            "benchmark", "old median", "new median", "change"
        )?;
        for d in &self.deltas {
            let flag = if d.regressed(self.threshold) {
                "  REGRESSED"
            } else if d.change > self.threshold {
                "  within noise band"
            } else {
                ""
            };
            writeln!(
                f,
                "{:<44} {:>10}ns {:>10}ns {:>+8.1}%{flag}",
                d.id,
                d.old_ns,
                d.new_ns,
                d.change * 100.0
            )?;
        }
        for id in &self.only_old {
            writeln!(f, "{id:<44} (removed — only in baseline)")?;
        }
        for id in &self.only_new {
            writeln!(f, "{id:<44} (new — not in baseline)")?;
        }
        Ok(())
    }
}

/// Diffs `new` against the `old` baseline, flagging medians that grew
/// more than `threshold` (e.g. `0.10` = 10 % slower).
///
/// Duplicate ids within one snapshot keep the last occurrence, matching
/// "append and re-run" harness usage.
pub fn compare(old: &[BenchRecord], new: &[BenchRecord], threshold: f64) -> Comparison {
    let new_by_id: BTreeMap<&str, u64> = new.iter().map(|r| (r.id.as_str(), r.median_ns)).collect();
    let old_by_id: BTreeMap<&str, &BenchRecord> = old.iter().map(|r| (r.id.as_str(), r)).collect();

    let mut seen = std::collections::BTreeSet::new();
    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    for r in old {
        if !seen.insert(r.id.as_str()) {
            continue;
        }
        let old_rec = old_by_id[r.id.as_str()];
        let old_ns = old_rec.median_ns;
        match new_by_id.get(r.id.as_str()) {
            Some(&new_ns) => deltas.push(Delta {
                id: r.id.clone(),
                old_ns,
                new_ns,
                change: if old_ns == 0 {
                    0.0
                } else {
                    new_ns as f64 / old_ns as f64 - 1.0
                },
                old_band: old_rec.min_ns.zip(old_rec.max_ns),
            }),
            None => only_old.push(r.id.clone()),
        }
    }
    let mut only_new: Vec<String> = new
        .iter()
        .filter(|r| !old_by_id.contains_key(r.id.as_str()))
        .map(|r| r.id.clone())
        .collect();
    only_new.dedup();
    Comparison {
        deltas,
        only_old,
        only_new,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, ns: u64) -> BenchRecord {
        BenchRecord {
            id: id.into(),
            median_ns: ns,
            min_ns: None,
            max_ns: None,
        }
    }

    fn rec_band(id: &str, ns: u64, min: u64, max: u64) -> BenchRecord {
        BenchRecord {
            id: id.into(),
            median_ns: ns,
            min_ns: Some(min),
            max_ns: Some(max),
        }
    }

    #[test]
    fn parses_harness_output() {
        let text = "{\"id\":\"solver/op/8\",\"median_ns\":2763,\"min_ns\":2659,\"max_ns\":3193,\"iters\":10000}\n\n{\"id\":\"a\\\"b\",\"median_ns\":5}\n";
        let recs = parse_jsonl(text).unwrap();
        assert_eq!(
            recs,
            vec![rec_band("solver/op/8", 2763, 2659, 3193), rec("a\"b", 5)]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_jsonl("{\"id\":\"x\"}").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("median_ns"));
        assert!(parse_jsonl("{\"median_ns\":3}").is_err());
    }

    #[test]
    fn flags_only_regressions_past_threshold() {
        let old = [rec("a", 1000), rec("b", 1000), rec("c", 1000)];
        let new = [rec("a", 1099), rec("b", 1250), rec("c", 400)];
        let cmp = compare(&old, &new, 0.10);
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "b");
        assert!((regs[0].change - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tracks_added_and_removed_benchmarks() {
        let old = [rec("gone", 10), rec("kept", 10)];
        let new = [rec("kept", 10), rec("fresh", 10)];
        let cmp = compare(&old, &new, 0.10);
        assert_eq!(cmp.only_old, vec!["gone".to_string()]);
        assert_eq!(cmp.only_new, vec!["fresh".to_string()]);
        assert_eq!(cmp.deltas.len(), 1);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn noise_band_suppresses_jitter_regressions() {
        // Median grew 20 % but stays inside the baseline's own observed
        // min..max spread: jitter, not a regression.
        let old = [rec_band("noisy", 1000, 800, 1300)];
        let new = [rec("noisy", 1200)];
        let cmp = compare(&old, &new, 0.10);
        assert!(cmp.regressions().is_empty(), "{cmp}");
        assert!(cmp.to_string().contains("within noise band"), "{cmp}");

        // Past both the threshold and the band: a real regression.
        let cmp = compare(&old, &[rec("noisy", 1400)], 0.10);
        assert_eq!(cmp.regressions().len(), 1);

        // Inside the band but below the threshold: nothing flagged.
        let cmp = compare(&old, &[rec("noisy", 1050)], 0.10);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn missing_band_falls_back_to_flat_threshold() {
        let cmp = compare(&[rec("a", 1000)], &[rec("a", 1150)], 0.10);
        assert_eq!(cmp.regressions().len(), 1, "no band recorded: gate flat");
    }

    #[test]
    fn display_marks_regressions() {
        let cmp = compare(&[rec("slow/one", 100)], &[rec("slow/one", 200)], 0.10);
        let text = cmp.to_string();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
    }
}

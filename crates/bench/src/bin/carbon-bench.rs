//! Benchmark snapshot and trace tooling.
//!
//! ```text
//! carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]
//! carbon-bench trace-summary <trace.jsonl>
//! carbon-bench fig2
//! ```
//!
//! `compare` diffs two harness snapshots (as written to
//! `target/carbon-bench/<group>.jsonl` by the bench binaries) and exits
//! nonzero when any benchmark's median regressed more than the
//! threshold (default 10 %) *and* escaped the baseline's recorded
//! min..max noise band. `ci.sh` runs this against the committed
//! baseline in `benches/baseline/` when `CARBON_BENCH_COMPARE=1`.
//!
//! `trace-summary` folds a `CARBON_TRACE` JSONL event stream into the
//! same schema `compare` consumes (span duration stats, integer-field
//! stats, counter totals), printed to stdout.
//!
//! `fig2` runs the Fig. 2 experiment and prints its report — a small,
//! deterministic traced-run target for the CI trace smoke test.
//!
//! `ac` runs a parallel sparse AC sweep of the 64-stage RC ladder and
//! prints every phasor at full precision — the deterministic target
//! the CI AC smoke test diffs across thread counts.
//!
//! `fig7` runs the §V statistics experiment and prints its report —
//! the pure-sampling traced-run target for the CI trace baselines.
//!
//! `tran` runs the `tran_ramp` (stiff power-on ramp) and `tran_ring`
//! (3-stage ring oscillator) transient workloads under both stepping
//! methods and prints one row per run: deck, method, accepted/rejected
//! step counts, and an FNV-1a 64 digest over every time point's and
//! voltage's exact bit pattern. The rows are a pure function of the
//! decks, so `ci.sh` diffs them across `CARBON_THREADS` — and the
//! fixed-vs-adaptive step ratio on the ramp deck is the adaptive
//! method's speedup evidence.
//!
//! `serve-load` starts an in-process carbon-serve server on loopback
//! and drives it with a deterministic mixed job load; latency rows go
//! to stdout in the compare-JSONL schema, the human summary to stderr.
//! `--digest` appends an FNV-1a 64 digest of the id-sorted response
//! bodies, which `ci.sh` diffs across `CARBON_THREADS`.

use std::process::ExitCode;

use carbon_bench::compare::{compare, parse_jsonl};
use carbon_bench::serve_load;
use carbon_bench::summary::summarize;

fn usage() -> ExitCode {
    eprintln!(
        "usage: carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]\n       \
         carbon-bench trace-summary <trace.jsonl>\n       \
         carbon-bench fig2\n       \
         carbon-bench fig7\n       \
         carbon-bench ac\n       \
         carbon-bench tran\n       \
         carbon-bench serve-load [--connections <n>] [--jobs <n>] [--workers <n>]\n                               \
         [--queue-depth <n>] [--digest]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("trace-summary") => run_trace_summary(&args[1..]),
        Some("fig2") => run_fig2(),
        Some("fig7") => run_fig7(),
        Some("ac") => run_ac(),
        Some("tran") => run_tran(),
        Some("serve-load") => run_serve_load(&args[1..]),
        _ => usage(),
    }
}

fn run_fig7() -> ExitCode {
    match carbon_core::fig7_stats::run() {
        Ok(fig) => {
            print!("{fig}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve_load(args: &[String]) -> ExitCode {
    let mut config = serve_load::LoadConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut parse_next = |target: &mut usize| -> bool {
            match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    *target = n;
                    true
                }
                _ => false,
            }
        };
        let ok = match a.as_str() {
            "--connections" => parse_next(&mut config.connections),
            "--jobs" => parse_next(&mut config.jobs),
            "--workers" => parse_next(&mut config.workers),
            "--queue-depth" => parse_next(&mut config.queue_depth),
            "--digest" => {
                config.digest = true;
                true
            }
            _ => false,
        };
        if !ok {
            return usage();
        }
    }
    match serve_load::run(&config) {
        Ok(report) => {
            print!("{}", report.jsonl);
            if let Some(digest) = report.digest {
                println!("digest={digest:016x}");
            }
            eprint!("{}", report.summary);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: serve-load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_trace_summary(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("carbon-bench: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = summarize(&text);
    print!("{summary}");
    if summary.stats.is_empty() {
        eprintln!("carbon-bench: {path}: no trace events recognized");
        return ExitCode::from(2);
    }
    if summary.skipped > 0 {
        eprintln!(
            "carbon-bench: {path}: {} unrecognized line(s) skipped",
            summary.skipped
        );
    }
    ExitCode::SUCCESS
}

fn run_fig2() -> ExitCode {
    match carbon_core::fig2::run() {
        Ok(fig) => {
            print!("{fig}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: fig2: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ac() -> ExitCode {
    // A sparse-path system (66 unknowns) swept in parallel chunks of 8:
    // the chunking is fixed, so this report is byte-identical at every
    // CARBON_THREADS — which is exactly what ci.sh diffs.
    let ckt = carbon_bench::rc_ladder(64);
    let freqs = carbon_bench::log_freqs(40, 1e3, 1e9);
    match ckt.ac_sweep_par("vin", &freqs, 8) {
        Ok(ac) => {
            for (f, sol) in freqs.iter().zip(ac.solutions()) {
                print!("f={f:.17e}");
                for z in sol {
                    print!(" {:.17e}{:+.17e}j", z.re, z.im);
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: ac: {e}");
            ExitCode::FAILURE
        }
    }
}

type TranWorkload = (&'static str, fn() -> carbon_spice::Circuit, f64, f64);

fn run_tran() -> ExitCode {
    use carbon_spice::TranOptions;

    let ring_h = 2e-9;
    let workloads: [TranWorkload; 2] = [
        (
            "tran_ramp",
            carbon_bench::tran_ramp,
            carbon_bench::TRAN_RAMP_TSTEP,
            carbon_bench::TRAN_RAMP_TSTOP,
        ),
        (
            "tran_ring",
            || carbon_bench::ring_osc(3, 2e-9),
            ring_h / 2000.0,
            ring_h,
        ),
    ];
    for (deck, build, tstep, tstop) in workloads {
        for (method, opts) in [
            ("fixed", TranOptions::default()),
            ("adaptive", TranOptions::adaptive()),
        ] {
            let tran = match build().transient_with(tstep, tstop, opts) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("carbon-bench: tran: {deck}/{method}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut digest = carbon_bench::Fnv::new();
            for &t in tran.times() {
                digest.write_f64(t);
            }
            for node in tran.node_names().to_vec() {
                for &v in tran.voltages(&node).expect("own node list") {
                    digest.write_f64(v);
                }
            }
            println!(
                "deck={deck} method={method} points={} steps={} rejects={} digest={:016x}",
                tran.times().len(),
                tran.accepted_steps(),
                tran.rejected_steps(),
                digest.finish()
            );
        }
    }
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 0.10_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            if !(pct.is_finite() && pct >= 0.0) {
                return usage();
            }
            threshold = pct / 100.0;
        } else {
            paths.push(a);
        }
    }
    let [old_path, new_path] = paths[..] else {
        return usage();
    };

    let mut snapshots = Vec::with_capacity(2);
    for path in [old_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("carbon-bench: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_jsonl(&text) {
            Ok(records) => snapshots.push(records),
            Err(e) => {
                eprintln!("carbon-bench: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let cmp = compare(&snapshots[0], &snapshots[1], threshold);
    print!("{cmp}");
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "no regressions past {:.0} % across {} benchmark(s)",
            threshold * 100.0,
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{} benchmark(s) regressed past {:.0} %",
            regressions.len(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}

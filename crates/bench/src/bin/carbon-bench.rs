//! Benchmark snapshot tooling.
//!
//! ```text
//! carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]
//! ```
//!
//! Diffs two harness snapshots (as written to
//! `target/carbon-bench/<group>.jsonl` by the bench binaries) and exits
//! nonzero when any benchmark's median regressed more than the
//! threshold (default 10 %). `ci.sh` runs this against the committed
//! baseline in `benches/baseline/` when `CARBON_BENCH_COMPARE=1`.

use std::process::ExitCode;

use carbon_bench::compare::{compare, parse_jsonl};

fn usage() -> ExitCode {
    eprintln!("usage: carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        _ => usage(),
    }
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 0.10_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            if !(pct.is_finite() && pct >= 0.0) {
                return usage();
            }
            threshold = pct / 100.0;
        } else {
            paths.push(a);
        }
    }
    let [old_path, new_path] = paths[..] else {
        return usage();
    };

    let mut snapshots = Vec::with_capacity(2);
    for path in [old_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("carbon-bench: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_jsonl(&text) {
            Ok(records) => snapshots.push(records),
            Err(e) => {
                eprintln!("carbon-bench: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let cmp = compare(&snapshots[0], &snapshots[1], threshold);
    print!("{cmp}");
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "no regressions past {:.0} % across {} benchmark(s)",
            threshold * 100.0,
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{} benchmark(s) regressed past {:.0} %",
            regressions.len(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}

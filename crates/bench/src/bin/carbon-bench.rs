//! Benchmark snapshot and trace tooling.
//!
//! ```text
//! carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]
//! carbon-bench trace-summary <trace.jsonl>
//! carbon-bench fig2
//! ```
//!
//! `compare` diffs two harness snapshots (as written to
//! `target/carbon-bench/<group>.jsonl` by the bench binaries) and exits
//! nonzero when any benchmark's median regressed more than the
//! threshold (default 10 %) *and* escaped the baseline's recorded
//! min..max noise band. `ci.sh` runs this against the committed
//! baseline in `benches/baseline/` when `CARBON_BENCH_COMPARE=1`.
//!
//! `trace-summary` folds a `CARBON_TRACE` JSONL event stream into the
//! same schema `compare` consumes (span duration stats, integer-field
//! stats, counter totals), printed to stdout. With `--folded` it
//! instead emits flamegraph folded stacks — one
//! `root;child;leaf self_ns` line per call path, self time only — for
//! direct consumption by `flamegraph.pl` / `inferno`.
//!
//! `batch` evaluates every device model through both the scalar entry
//! point and the structure-of-arrays batch kernel over fixed lanes,
//! asserts the outputs are bit-identical, and prints one digest row per
//! model plus one row for the adaptive §V Monte-Carlo campaign. The
//! output is a pure function of the models, so `ci.sh` diffs it across
//! `CARBON_THREADS` — the batch layer's and the adaptive campaign's
//! determinism smoke test.
//!
//! `fig2` runs the Fig. 2 experiment and prints its report — a small,
//! deterministic traced-run target for the CI trace smoke test.
//!
//! `ac` runs a parallel sparse AC sweep of the 64-stage RC ladder and
//! prints every phasor at full precision — the deterministic target
//! the CI AC smoke test diffs across thread counts.
//!
//! `fig7` runs the §V statistics experiment and prints its report —
//! the pure-sampling traced-run target for the CI trace baselines.
//!
//! `tran` runs the `tran_ramp` (stiff power-on ramp) and `tran_ring`
//! (3-stage ring oscillator) transient workloads under both stepping
//! methods and prints one row per run: deck, method, accepted/rejected
//! step counts, and an FNV-1a 64 digest over every time point's and
//! voltage's exact bit pattern. The rows are a pure function of the
//! decks, so `ci.sh` diffs them across `CARBON_THREADS` — and the
//! fixed-vs-adaptive step ratio on the ramp deck is the adaptive
//! method's speedup evidence.
//!
//! `serve-load` starts an in-process carbon-serve server on loopback
//! and drives it with a deterministic mixed job load; latency rows go
//! to stdout in the compare-JSONL schema, the human summary to stderr.
//! The rows include the server's own `stats` snapshot (flattened as
//! `serve/stats/*`), which `ci.sh` gates on for server-side health.
//! `--digest` appends an FNV-1a 64 digest of the id-sorted response
//! bodies, which `ci.sh` diffs across `CARBON_THREADS`. `--passes`
//! replays the identical schedule over one server (warming its
//! response cache) and prints one `pass<i>_digest=` line per pass;
//! `--repeat-frac` switches to the parameter-varied repeat workload
//! and `--cache-bytes` sizes or (at 0) disables the server's cache.

use std::process::ExitCode;

use carbon_bench::compare::{compare, parse_jsonl};
use carbon_bench::serve_load;
use carbon_bench::summary::summarize;

fn usage() -> ExitCode {
    eprintln!(
        "usage: carbon-bench compare <old.jsonl> <new.jsonl> [--threshold <pct>]\n       \
         carbon-bench trace-summary <trace.jsonl> [--folded]\n       \
         carbon-bench batch\n       \
         carbon-bench fig2\n       \
         carbon-bench fig7\n       \
         carbon-bench ac\n       \
         carbon-bench tran\n       \
         carbon-bench serve-load [--connections <n>] [--jobs <n>] [--workers <n>]\n                               \
         [--queue-depth <n>] [--passes <n>] [--repeat-frac <f>]\n                               \
         [--cache-bytes <n>] [--digest]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("trace-summary") => run_trace_summary(&args[1..]),
        Some("batch") => run_batch(),
        Some("fig2") => run_fig2(),
        Some("fig7") => run_fig7(),
        Some("ac") => run_ac(),
        Some("tran") => run_tran(),
        Some("serve-load") => run_serve_load(&args[1..]),
        _ => usage(),
    }
}

fn run_fig7() -> ExitCode {
    match carbon_core::fig7_stats::run() {
        Ok(fig) => {
            print!("{fig}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve_load(args: &[String]) -> ExitCode {
    let mut config = serve_load::LoadConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut parse_next = |target: &mut usize| -> bool {
            match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    *target = n;
                    true
                }
                _ => false,
            }
        };
        let ok = match a.as_str() {
            "--connections" => parse_next(&mut config.connections),
            "--jobs" => parse_next(&mut config.jobs),
            "--workers" => parse_next(&mut config.workers),
            "--queue-depth" => parse_next(&mut config.queue_depth),
            "--passes" => parse_next(&mut config.passes),
            // Zero is meaningful here (it disables the cache), so this
            // flag does not go through the positive-only parser.
            "--cache-bytes" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => {
                    config.cache_bytes = n;
                    true
                }
                None => false,
            },
            "--repeat-frac" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => {
                    config.repeat_frac = f;
                    true
                }
                _ => false,
            },
            "--digest" => {
                config.digest = true;
                true
            }
            _ => false,
        };
        if !ok {
            return usage();
        }
    }
    match serve_load::run(&config) {
        Ok(report) => {
            print!("{}", report.jsonl);
            if report.pass_digests.len() > 1 {
                for (i, digest) in report.pass_digests.iter().enumerate() {
                    println!("pass{i}_digest={digest:016x}");
                }
            }
            if let Some(digest) = report.digest {
                println!("digest={digest:016x}");
            }
            eprint!("{}", report.summary);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: serve-load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_trace_summary(args: &[String]) -> ExitCode {
    let (path, folded) = match args {
        [path] => (path, false),
        [path, flag] | [flag, path] if flag == "--folded" => (path, true),
        _ => return usage(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("carbon-bench: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if folded {
        let stacks = carbon_bench::summary::folded(&text);
        print!("{stacks}");
        if stacks.is_empty() {
            eprintln!("carbon-bench: {path}: no spans recognized");
            return ExitCode::from(2);
        }
        return ExitCode::SUCCESS;
    }
    let summary = summarize(&text);
    print!("{summary}");
    if summary.stats.is_empty() {
        eprintln!("carbon-bench: {path}: no trace events recognized");
        return ExitCode::from(2);
    }
    if summary.skipped > 0 {
        eprintln!(
            "carbon-bench: {path}: {} unrecognized line(s) skipped",
            summary.skipped
        );
    }
    ExitCode::SUCCESS
}

/// Deterministic lanes spread over the operating window with
/// incommensurate strides, so no branch pattern repeats.
fn batch_lanes(n: usize) -> (Vec<f64>, Vec<f64>) {
    let vgs = (0..n)
        .map(|i| -0.2 + 1.1 * (i % 131) as f64 / 130.0)
        .collect();
    let vds = (0..n)
        .map(|i| 0.05 + 0.85 * (i % 97) as f64 / 96.0)
        .collect();
    (vgs, vds)
}

/// Evaluates one model scalar and batched, asserts bit-identity, and
/// prints the digest row.
fn batch_row(name: &str, model: &(impl carbon_devices::batch::BatchEval + ?Sized), n: usize) {
    let (vgs, vds) = batch_lanes(n);
    let mut soa = vec![0.0; n];
    model.ids_soa(&vgs, &vds, &mut soa);
    let mut digest = carbon_bench::Fnv::new();
    for k in 0..n {
        let scalar = model.ids(vgs[k], vds[k]);
        assert_eq!(
            scalar.to_bits(),
            soa[k].to_bits(),
            "{name}: SoA kernel diverged from scalar at lane {k}"
        );
        digest.write_f64(soa[k]);
    }
    println!(
        "batch model={name} lanes={n} digest={:016x}",
        digest.finish()
    );
}

fn run_batch() -> ExitCode {
    let table_src = match carbon_devices::BallisticFet::cnt_fig1() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("carbon-bench: batch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = match carbon_devices::TableFet::sample(&table_src, (-0.3, 1.2), (-0.1, 1.0), 61, 61)
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("carbon-bench: batch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let alpha = carbon_devices::AlphaPowerFet::new(0.35, 1.3, 7.2e-4, 0.8, 0.15, 75.0)
        .expect("literal parameters are valid");
    let gnr = carbon_devices::LinearGnrFet::new(2e-4, 0.35, 90.0, 0.3, 0.5)
        .expect("literal parameters are valid");

    batch_row("alpha_power", &alpha, 4096);
    batch_row("linear_gnr", &gnr, 4096);
    batch_row("table", &table, 4096);
    // The live ballistic model is transcendental-heavy; a short lane
    // still covers every branch of its SoA kernel.
    batch_row("ballistic", &table_src, 64);

    // The executor-chunked entry point: this row is what makes the
    // cross-thread diff in ci.sh meaningful for the batch layer.
    let (vgs, vds) = batch_lanes(4096);
    let par = carbon_devices::batch::par_ids_soa(&table, &vgs, &vds);
    let mut digest = carbon_bench::Fnv::new();
    for v in &par {
        digest.write_f64(*v);
    }
    println!(
        "batch model=table_par lanes={} digest={:016x}",
        par.len(),
        digest.finish()
    );

    // The adaptive campaign: devices, rounds, and CI must be identical
    // at every `CARBON_THREADS`.
    let campaign = carbon_fab::VariabilityModel::park_experiment().sample_population_adaptive(
        &carbon_runtime::Executor::new(),
        2014,
        // Tight enough to need several growth rounds, so the chunk
        // extension path is actually exercised.
        0.01,
        100_000,
    );
    let mut digest = carbon_bench::Fnv::new();
    for vt in campaign.population.thresholds() {
        digest.write_f64(vt);
    }
    for ion in campaign.population.on_currents() {
        digest.write_f64(ion);
    }
    println!(
        "batch adaptive devices={} rounds={} converged={} ci_half_width={} digest={:016x}",
        campaign.population.len(),
        campaign.rounds,
        campaign.converged,
        campaign.ci_half_width,
        digest.finish()
    );
    ExitCode::SUCCESS
}

fn run_fig2() -> ExitCode {
    match carbon_core::fig2::run() {
        Ok(fig) => {
            print!("{fig}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: fig2: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ac() -> ExitCode {
    // A sparse-path system (66 unknowns) swept in parallel chunks of 8:
    // the chunking is fixed, so this report is byte-identical at every
    // CARBON_THREADS — which is exactly what ci.sh diffs.
    let ckt = carbon_bench::rc_ladder(64);
    let freqs = carbon_bench::log_freqs(40, 1e3, 1e9);
    match ckt.ac_sweep_par("vin", &freqs, 8) {
        Ok(ac) => {
            for (f, sol) in freqs.iter().zip(ac.solutions()) {
                print!("f={f:.17e}");
                for z in sol {
                    print!(" {:.17e}{:+.17e}j", z.re, z.im);
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carbon-bench: ac: {e}");
            ExitCode::FAILURE
        }
    }
}

type TranWorkload = (&'static str, fn() -> carbon_spice::Circuit, f64, f64);

fn run_tran() -> ExitCode {
    use carbon_spice::TranOptions;

    let ring_h = 2e-9;
    let workloads: [TranWorkload; 2] = [
        (
            "tran_ramp",
            carbon_bench::tran_ramp,
            carbon_bench::TRAN_RAMP_TSTEP,
            carbon_bench::TRAN_RAMP_TSTOP,
        ),
        (
            "tran_ring",
            || carbon_bench::ring_osc(3, 2e-9),
            ring_h / 2000.0,
            ring_h,
        ),
    ];
    for (deck, build, tstep, tstop) in workloads {
        for (method, opts) in [
            ("fixed", TranOptions::default()),
            ("adaptive", TranOptions::adaptive()),
        ] {
            let tran = match build().transient_with(tstep, tstop, opts) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("carbon-bench: tran: {deck}/{method}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut digest = carbon_bench::Fnv::new();
            for &t in tran.times() {
                digest.write_f64(t);
            }
            for node in tran.node_names().to_vec() {
                for &v in tran.voltages(&node).expect("own node list") {
                    digest.write_f64(v);
                }
            }
            println!(
                "deck={deck} method={method} points={} steps={} rejects={} digest={:016x}",
                tran.times().len(),
                tran.accepted_steps(),
                tran.rejected_steps(),
                digest.finish()
            );
        }
    }
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 0.10_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            if !(pct.is_finite() && pct >= 0.0) {
                return usage();
            }
            threshold = pct / 100.0;
        } else {
            paths.push(a);
        }
    }
    let [old_path, new_path] = paths[..] else {
        return usage();
    };

    let mut snapshots = Vec::with_capacity(2);
    for path in [old_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("carbon-bench: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_jsonl(&text) {
            Ok(records) => snapshots.push(records),
            Err(e) => {
                eprintln!("carbon-bench: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let cmp = compare(&snapshots[0], &snapshots[1], threshold);
    print!("{cmp}");
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "no regressions past {:.0} % across {} benchmark(s)",
            threshold * 100.0,
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{} benchmark(s) regressed past {:.0} %",
            regressions.len(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}

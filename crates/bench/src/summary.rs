//! Aggregation of a `carbon-trace` JSONL file into benchmark records.
//!
//! `carbon-bench trace-summary <trace.jsonl>` folds a raw event stream
//! (one JSON object per span / instant / counter, as written by the
//! `CARBON_TRACE` exporter) into the same flat JSONL schema the bench
//! harness emits and [`crate::compare`] consumes:
//!
//! ```text
//! {"id":"trace/spice.newton_solve/dur_ns","median_ns":8100,"min_ns":7300,"max_ns":9800,"iters":101}
//! {"id":"trace/spice.newton_solve/iters","median_ns":3,"min_ns":2,"max_ns":9,"iters":101}
//! {"id":"trace/counter/spice.sparse.replay","median_ns":97,"min_ns":97,"max_ns":97,"iters":97}
//! ```
//!
//! Span durations and integer span fields become median/min/max rows
//! (`iters` = number of spans observed); counters and instants become
//! total rows. The payoff: a captured trace can be diffed against a
//! committed baseline with the exact `compare` machinery that gates
//! wall-clock benchmarks, so a convergence regression (more Newton
//! iterations, more repivots) fails CI the same way a slowdown does.

use std::collections::BTreeMap;
use std::fmt;

use carbon_json::find_string_end;

use crate::compare::{string_field, u64_field};

/// One aggregated statistic from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStat {
    /// Record id, e.g. `"trace/spice.newton_solve/dur_ns"`.
    pub id: String,
    /// Median of the observations (totals for counters/instants).
    pub median: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Number of observations folded in.
    pub count: u64,
}

impl TraceStat {
    fn from_samples(id: String, samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        Self {
            id,
            median: samples[samples.len() / 2],
            min: samples[0],
            max: samples[samples.len() - 1],
            count: samples.len() as u64,
        }
    }

    /// Renders the stat as one harness-schema JSONL line (no newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iters\":{}}}",
            self.id, self.median, self.min, self.max, self.count
        )
    }
}

/// A summarized trace: every statistic, sorted by id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Aggregated rows in id order (deterministic output).
    pub stats: Vec<TraceStat>,
    /// Events whose line could not be classified (unknown `ev` value or
    /// missing mandatory key). Zero on a well-formed trace.
    pub skipped: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stats {
            writeln!(f, "{}", s.render())?;
        }
        Ok(())
    }
}

/// Extracts the integer-valued entries of the `"fields":{...}` object
/// of a trace line. Floats, strings, bools and nulls are skipped —
/// only counts (Newton iterations, repivots, queue depths) are
/// meaningful to aggregate.
fn integer_fields(line: &str) -> Vec<(String, u64)> {
    let Some(start) = line.find("\"fields\":{") else {
        return Vec::new();
    };
    let body = &line[start + "\"fields\":{".len()..];
    let mut out = Vec::new();
    let mut rest = body;
    // Each iteration consumes one `"key":value` pair.
    while let Some(key_start) = rest.find('"') {
        let after_key = &rest[key_start + 1..];
        let Some(key_end) = find_string_end(after_key) else {
            break;
        };
        let key = &after_key[..key_end];
        let Some(value) = after_key[key_end + 1..].strip_prefix(':') else {
            break;
        };
        if let Some(string_value) = value.strip_prefix('"') {
            // String value: skip past its closing quote.
            let Some(end) = find_string_end(string_value) else {
                break;
            };
            rest = &string_value[end + 1..];
        } else {
            let literal: &str = value.split_terminator([',', '}']).next().unwrap_or("");
            if !literal.is_empty() && literal.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(v) = literal.parse::<u64>() {
                    out.push((key.to_owned(), v));
                }
            }
            rest = &value[literal.len()..];
        }
        match rest.as_bytes().first() {
            Some(b',') => rest = &rest[1..],
            _ => break,
        }
    }
    out
}

/// Aggregates a trace JSONL text into benchmark-schema statistics.
pub fn summarize(text: &str) -> TraceSummary {
    let mut span_durs: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut span_fields: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let mut counters: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    // Gauges keep (last, min, max, count) — set-valued, so summing
    // observations like a counter would be meaningless.
    let mut gauges: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    let mut skipped = 0usize;

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let classified = (|| {
            let ev = string_field(line, "ev")?;
            let name = string_field(line, "name")?;
            match ev.as_str() {
                "span" => {
                    let dur = u64_field(line, "dur_ns")?;
                    span_durs.entry(name.clone()).or_default().push(dur);
                    for (key, value) in integer_fields(line) {
                        span_fields
                            .entry((name.clone(), key))
                            .or_default()
                            .push(value);
                    }
                }
                "counter" => {
                    let delta = u64_field(line, "delta")?;
                    let slot = counters.entry(name).or_insert((0, 0));
                    slot.0 += delta;
                    slot.1 += 1;
                }
                "instant" => *instants.entry(name).or_insert(0) += 1,
                "gauge" => {
                    let value = u64_field(line, "value")?;
                    let slot = gauges.entry(name).or_insert((0, u64::MAX, 0, 0));
                    slot.0 = value;
                    slot.1 = slot.1.min(value);
                    slot.2 = slot.2.max(value);
                    slot.3 += 1;
                }
                _ => return None,
            }
            Some(())
        })();
        if classified.is_none() {
            skipped += 1;
        }
    }

    let mut stats = Vec::new();
    for (name, mut durs) in span_durs {
        stats.push(TraceStat::from_samples(
            format!("trace/{name}/dur_ns"),
            &mut durs,
        ));
    }
    for ((name, key), mut values) in span_fields {
        stats.push(TraceStat::from_samples(
            format!("trace/{name}/{key}"),
            &mut values,
        ));
    }
    for (name, (total, hits)) in counters {
        stats.push(TraceStat {
            id: format!("trace/counter/{name}"),
            median: total,
            min: total,
            max: total,
            count: hits,
        });
    }
    for (name, hits) in instants {
        stats.push(TraceStat {
            id: format!("trace/instant/{name}"),
            median: hits,
            min: hits,
            max: hits,
            count: hits,
        });
    }
    for (name, (last, min, max, hits)) in gauges {
        stats.push(TraceStat {
            id: format!("trace/gauge/{name}"),
            median: last,
            min,
            max,
            count: hits,
        });
    }
    stats.sort_by(|a, b| a.id.cmp(&b.id));
    TraceSummary { stats, skipped }
}

/// Folds a span tree into flamegraph-style folded stacks.
///
/// Each output line is `root;child;grandchild <self_ns>` — the span's
/// name path from its outermost ancestor, and the total time spent in
/// spans with that path *excluding* time inside their child spans
/// (flamegraph "self" semantics, in nanoseconds). Lines are sorted by
/// path, so the output is deterministic and feeds directly into
/// `flamegraph.pl` / `inferno-flamegraph`.
///
/// Spans whose recorded parent id is absent from the trace (e.g. a
/// truncated capture) root their own stack; parent chains are
/// depth-capped defensively. Instants and counters are ignored.
pub fn folded(text: &str) -> String {
    struct SpanRec {
        name: String,
        parent: Option<u64>,
        dur: u64,
        child_ns: u64,
    }
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if string_field(line, "ev").as_deref() != Some("span") {
            continue;
        }
        let (Some(name), Some(id), Some(dur)) = (
            string_field(line, "name"),
            u64_field(line, "id"),
            u64_field(line, "dur_ns"),
        ) else {
            continue;
        };
        spans.insert(
            id,
            SpanRec {
                name,
                parent: u64_field(line, "parent"),
                dur,
                child_ns: 0,
            },
        );
    }
    let child_durs: Vec<(u64, u64)> = spans
        .values()
        .filter_map(|s| s.parent.map(|p| (p, s.dur)))
        .collect();
    for (parent, dur) in child_durs {
        if let Some(rec) = spans.get_mut(&parent) {
            rec.child_ns += dur;
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for rec in spans.values() {
        let mut path = vec![rec.name.as_str()];
        let mut cursor = rec.parent;
        // Depth cap against malformed traces with parent cycles.
        for _ in 0..64 {
            let Some(parent) = cursor.and_then(|id| spans.get(&id)) else {
                break;
            };
            path.push(parent.name.as_str());
            cursor = parent.parent;
        }
        path.reverse();
        *stacks.entry(path.join(";")).or_insert(0) += rec.dur.saturating_sub(rec.child_ns);
    }
    let mut out = String::new();
    for (path, self_ns) in stacks {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"ev\":\"span\",\"name\":\"spice.newton_solve\",\"id\":1,\"thread\":1,",
        "\"start_ns\":0,\"dur_ns\":900,\"fields\":{\"iters\":3,\"converged\":true,",
        "\"residual\":1.2e-10,\"matrix\":\"dense\"}}\n",
        "{\"ev\":\"span\",\"name\":\"spice.newton_solve\",\"id\":2,\"thread\":1,",
        "\"start_ns\":1000,\"dur_ns\":500,\"fields\":{\"iters\":9}}\n",
        "{\"ev\":\"span\",\"name\":\"spice.newton_solve\",\"id\":3,\"thread\":2,",
        "\"start_ns\":1200,\"dur_ns\":700,\"fields\":{\"iters\":4}}\n",
        "{\"ev\":\"counter\",\"name\":\"spice.sparse.replay\",\"delta\":2,\"thread\":1}\n",
        "{\"ev\":\"counter\",\"name\":\"spice.sparse.replay\",\"delta\":3,\"thread\":2}\n",
        "{\"ev\":\"instant\",\"name\":\"spice.continuation_halve\",\"thread\":1,",
        "\"at_ns\":50,\"fields\":{\"depth\":1}}\n",
        "{\"ev\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":5,\"thread\":1}\n",
        "{\"ev\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":2,\"thread\":2}\n",
        "{\"ev\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":9,\"thread\":1}\n",
    );

    #[test]
    fn aggregates_span_durations_and_fields() {
        let summary = summarize(TRACE);
        assert_eq!(summary.skipped, 0);
        let by_id: BTreeMap<&str, &TraceStat> =
            summary.stats.iter().map(|s| (s.id.as_str(), s)).collect();

        let dur = by_id["trace/spice.newton_solve/dur_ns"];
        assert_eq!(
            (dur.median, dur.min, dur.max, dur.count),
            (700, 500, 900, 3)
        );

        let iters = by_id["trace/spice.newton_solve/iters"];
        assert_eq!((iters.median, iters.min, iters.max), (4, 3, 9));

        let replays = by_id["trace/counter/spice.sparse.replay"];
        assert_eq!((replays.median, replays.count), (5, 2));

        let halvings = by_id["trace/instant/spice.continuation_halve"];
        assert_eq!(halvings.median, 1);

        // Gauges report last/min/max of the observed values.
        let depth = by_id["trace/gauge/serve.queue_depth"];
        assert_eq!(
            (depth.median, depth.min, depth.max, depth.count),
            (9, 2, 9, 3)
        );

        // Non-integer fields (bool, float, string) are not aggregated.
        assert!(!by_id.contains_key("trace/spice.newton_solve/converged"));
        assert!(!by_id.contains_key("trace/spice.newton_solve/residual"));
        assert!(!by_id.contains_key("trace/spice.newton_solve/matrix"));
    }

    #[test]
    fn output_is_compare_compatible_and_sorted() {
        let summary = summarize(TRACE);
        let rendered = summary.to_string();
        let parsed = crate::compare::parse_jsonl(&rendered).expect("schema round-trips");
        assert_eq!(parsed.len(), summary.stats.len());
        let ids: Vec<&str> = summary.stats.iter().map(|s| s.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // Diffing a summary against itself gates clean.
        let cmp = crate::compare::compare(&parsed, &parsed, 0.10);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn unknown_events_are_counted_not_fatal() {
        let summary = summarize("{\"ev\":\"mystery\",\"name\":\"x\"}\nnot json\n");
        assert_eq!(summary.skipped, 2);
        assert!(summary.stats.is_empty());
    }

    #[test]
    fn folded_stacks_report_self_time_per_path() {
        // root(1000) -> inner(600) -> leaf(100); second root(50); and a
        // span whose parent is missing from the capture.
        let trace = concat!(
            "{\"ev\":\"span\",\"name\":\"leaf\",\"id\":3,\"parent\":2,\"thread\":1,",
            "\"start_ns\":20,\"dur_ns\":100,\"fields\":{}}\n",
            "{\"ev\":\"span\",\"name\":\"inner\",\"id\":2,\"parent\":1,\"thread\":1,",
            "\"start_ns\":10,\"dur_ns\":600,\"fields\":{}}\n",
            "{\"ev\":\"span\",\"name\":\"root\",\"id\":1,\"thread\":1,",
            "\"start_ns\":0,\"dur_ns\":1000,\"fields\":{}}\n",
            "{\"ev\":\"span\",\"name\":\"root\",\"id\":4,\"thread\":1,",
            "\"start_ns\":2000,\"dur_ns\":50,\"fields\":{}}\n",
            "{\"ev\":\"span\",\"name\":\"orphan\",\"id\":9,\"parent\":77,\"thread\":2,",
            "\"start_ns\":0,\"dur_ns\":5,\"fields\":{}}\n",
            "{\"ev\":\"instant\",\"name\":\"noise\",\"thread\":1,\"at_ns\":1,\"fields\":{}}\n",
            "{\"ev\":\"counter\",\"name\":\"noise\",\"delta\":3,\"thread\":1}\n",
        );
        let out = folded(trace);
        assert_eq!(
            out,
            "orphan 5\nroot 450\nroot;inner 500\nroot;inner;leaf 100\n"
        );
    }

    #[test]
    fn folded_merges_repeated_paths() {
        let trace = concat!(
            "{\"ev\":\"span\",\"name\":\"work\",\"id\":1,\"thread\":1,",
            "\"start_ns\":0,\"dur_ns\":10,\"fields\":{}}\n",
            "{\"ev\":\"span\",\"name\":\"work\",\"id\":2,\"thread\":1,",
            "\"start_ns\":20,\"dur_ns\":30,\"fields\":{}}\n",
        );
        assert_eq!(folded(trace), "work 40\n");
        assert_eq!(folded(""), "");
    }

    #[test]
    fn field_scanner_survives_tricky_strings() {
        let line = "{\"ev\":\"span\",\"name\":\"s\",\"id\":1,\"thread\":1,\"start_ns\":0,\
                    \"dur_ns\":1,\"fields\":{\"label\":\"a,}\\\"b\",\"n\":7}}";
        assert_eq!(integer_fields(line), vec![("n".to_owned(), 7)]);
    }
}

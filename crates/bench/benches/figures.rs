//! One benchmark per paper figure/claim: times the complete
//! regeneration of each artifact and prints its headline numbers once,
//! so a bench run doubles as an experiment run.

use carbon_runtime::bench::{black_box, Harness};

use carbon_core::{claims, fig1, fig2, fig3, fig4, fig5, fig6, fig7_stats, fig8_computer};

fn main() {
    let mut h = Harness::group("figures");

    let fig = fig1::run().expect("fig1 runs");
    println!(
        "[fig1] log-gap {:.2} dec; saturation CNT {:.1} / realGNR {:.2}",
        fig.transfer_log_gap, fig.saturation_figures[0], fig.saturation_figures[2]
    );
    h.bench("fig1_cnt_vs_gnr", || {
        black_box(fig1::run().expect("runs"));
    });

    let fig = fig2::run().expect("fig2 runs");
    println!(
        "[fig2] gains {:.2}/{:.2}; NM {:.2}/{:.2} V",
        fig.max_gain[0], fig.max_gain[1], fig.margins_saturating.low, fig.margins_saturating.high
    );
    h.bench("fig2/inverter_vtcs", || {
        black_box(fig2::run().expect("runs"));
    });

    let fig = fig3::run().expect("fig3 runs");
    println!(
        "[fig3] GAA SS@9nm {:.1} mV/dec; CNT CET {:.2} nm",
        fig.geometries[2].ss[0],
        fig.cet_by_material.last().expect("rows").1
    );
    h.bench("fig3_electrostatics", || {
        black_box(fig3::run().expect("runs"));
    });

    let fig = fig4::run().expect("fig4 runs");
    println!(
        "[fig4] current ÷{:.2}; saturation {:.1}→{:.1}",
        fig.current_reduction, fig.saturation[0], fig.saturation[1]
    );
    h.bench("fig4/contact_resistance", || {
        black_box(fig4::run().expect("runs"));
    });

    let fig = fig5::run().expect("fig5 runs");
    println!("[fig5] CNT advantage ≥ {:.1}×", fig.min_advantage);
    h.bench("fig5/technology_benchmark", || {
        black_box(fig5::run().expect("runs"));
    });

    let fig = fig6::run().expect("fig6 runs");
    println!(
        "[fig6] SS avg {:.1} best {:.1} mV/dec; {:.2} mA/µm",
        fig.average_swing, fig.best_swing, fig.on_density_ma_per_um
    );
    h.bench("fig6_tunnel_fet", || {
        black_box(fig6::run().expect("runs"));
    });

    let cl = claims::run().expect("claims run");
    println!(
        "[claims] trigate {:.0} µA vs CNT {:.0} µA @0.6 V; {:.0}× area",
        cl.trigate_ion * 1e6,
        cl.cnt_ion_06 * 1e6,
        cl.cross_section_ratio
    );
    h.bench("scalar_claims", || {
        black_box(claims::run().expect("runs"));
    });

    let fig = fig7_stats::run().expect("fig7 runs");
    println!(
        "[fig7] functional {:.1} %; Vt {:.3}±{:.3} V",
        fig.fractions[0] * 100.0,
        fig.vt_stats.0,
        fig.vt_stats.1
    );
    h.bench("fig7/park_campaign", || {
        black_box(fig7_stats::run().expect("runs"));
    });

    let fig = fig8_computer::run().expect("fig8 runs");
    println!(
        "[fig8] stage {:.0} ps; sorted {:?}; counting {} instr",
        fig.stage_delay_s * 1e12,
        fig.sorted,
        fig.counting.0
    );
    h.bench("fig8/cnt_computer", || {
        black_box(fig8_computer::run().expect("runs"));
    });

    h.finish();
}

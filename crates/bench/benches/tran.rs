//! Transient-integration benchmarks: the stiff power-on ramp and the
//! ring oscillator, each under the fixed-step oracle and the
//! LTE-adaptive controller.
//!
//! `tran_ramp` is the adaptive method's headline workload: two RC
//! sections four decades apart force a 50 000-step fixed grid, while
//! the LTE controller resolves the fast corner and then grows straight
//! through the slow tail in a few hundred steps — the committed
//! baseline pins the ≥3× wall-clock win (in practice far larger).
//! `tran_ring` is the adversarial case: a ring oscillator never
//! settles, so the controller holds a fine step for accuracy and the
//! bench guards against the adaptive path regressing on workloads it
//! cannot accelerate.

use carbon_runtime::bench::{black_box, Harness};

use carbon_bench::{ring_osc, tran_ramp, TRAN_RAMP_TSTEP, TRAN_RAMP_TSTOP};

fn main() {
    let mut h = Harness::group("tran");

    h.bench("tran_ramp_fixed", || {
        black_box(
            tran_ramp()
                .transient(TRAN_RAMP_TSTEP, TRAN_RAMP_TSTOP)
                .expect("integrates"),
        );
    });
    h.bench("tran_ramp_adaptive", || {
        black_box(
            tran_ramp()
                .transient_adaptive(TRAN_RAMP_TSTEP, TRAN_RAMP_TSTOP)
                .expect("integrates"),
        );
    });

    let horizon = 2e-9;
    h.bench("tran_ring_fixed/3", || {
        black_box(
            ring_osc(3, horizon)
                .transient(horizon / 2000.0, horizon)
                .expect("integrates"),
        );
    });
    h.bench("tran_ring_adaptive/3", || {
        black_box(
            ring_osc(3, horizon)
                .transient_adaptive(horizon / 2000.0, horizon)
                .expect("integrates"),
        );
    });

    h.finish();
}

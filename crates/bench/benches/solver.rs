//! Scaling benchmarks of the MNA circuit-simulation substrate: dense LU
//! on growing ladders, Newton convergence on diode chains, DC sweeps,
//! and transient integration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use carbon_bench::{diode_chain, resistor_ladder};
use carbon_spice::parser::parse_deck;
use carbon_spice::{Circuit, Waveform};

fn bench_ladder_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("mna_ladder_op");
    for n in [8usize, 32, 128] {
        let ckt = resistor_ladder(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ckt, |b, ckt| {
            b.iter(|| black_box(ckt.op().expect("solvable")))
        });
    }
    g.finish();
}

fn bench_diode_newton(c: &mut Criterion) {
    let mut g = c.benchmark_group("newton_diode_chain");
    for n in [2usize, 8, 24] {
        let ckt = diode_chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ckt, |b, ckt| {
            b.iter(|| black_box(ckt.op().expect("solvable")))
        });
    }
    g.finish();
}

fn bench_dc_sweep(c: &mut Criterion) {
    let ckt = resistor_ladder(16);
    c.bench_function("dc_sweep_100pt", |b| {
        b.iter(|| black_box(ckt.dc_sweep("v", 0.0, 1.0, 0.01).expect("sweeps")))
    });
}

fn bench_transient_rc(c: &mut Criterion) {
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-8,
            rise: 1e-9,
            fall: 1e-9,
            width: 5e-7,
            period: 0.0,
        },
    )
    .expect("source");
    ckt.resistor("r", "in", "out", 1e3).expect("resistor");
    ckt.capacitor("c", "out", "0", 1e-9).expect("capacitor");
    c.bench_function("transient_rc_1000_steps", |b| {
        b.iter(|| black_box(ckt.transient(1e-9, 1e-6).expect("integrates")))
    });
}

fn bench_ac_sweep(c: &mut Criterion) {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("r", "in", "out", 1e3).expect("resistor");
    ckt.capacitor("cl", "out", "0", 1e-9).expect("capacitor");
    let freqs: Vec<f64> = (0..100).map(|k| 1e3 * 10f64.powf(k as f64 / 16.0)).collect();
    c.bench_function("ac_sweep_100pt", |b| {
        b.iter(|| black_box(ckt.ac_sweep("vin", &freqs).expect("sweeps")))
    });
}

fn bench_deck_parse(c: &mut Criterion) {
    let deck = {
        let mut d = String::from("V1 n0 0 1.0\n");
        for i in 0..64 {
            d.push_str(&format!("Rs{i} n{i} n{} 1k\n", i + 1));
            d.push_str(&format!("Rp{i} n{} 0 1k\n", i + 1));
        }
        d
    };
    c.bench_function("parse_deck_129_elements", |b| {
        b.iter(|| black_box(parse_deck(&deck).expect("parses")))
    });
}

criterion_group!(
    solver,
    bench_ladder_op,
    bench_diode_newton,
    bench_dc_sweep,
    bench_transient_rc,
    bench_ac_sweep,
    bench_deck_parse
);
criterion_main!(solver);

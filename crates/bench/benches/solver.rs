//! Scaling benchmarks of the MNA circuit-simulation substrate: dense LU
//! on growing ladders, Newton convergence on diode chains, DC sweeps,
//! and transient integration.

use carbon_runtime::bench::{black_box, Harness};

use carbon_bench::{diode_chain, fet_cs_amp, log_freqs, rc_ladder, resistor_ladder};
use carbon_spice::parser::parse_deck;
use carbon_spice::{AcMethod, Circuit, Waveform};

fn main() {
    let mut h = Harness::group("solver");

    for n in [8usize, 32, 128] {
        let ckt = resistor_ladder(n);
        h.bench(&format!("mna_ladder_op/{n}"), || {
            black_box(ckt.op().expect("solvable"));
        });
    }

    for n in [8usize, 24, 64] {
        let ckt = diode_chain(n);
        h.bench(&format!("newton_diode_chain/{n}"), || {
            black_box(ckt.op().expect("solvable"));
        });
    }

    // The Fig. 2 voltage-transfer curve — the paper workload that the
    // warm-started sweep and the parallel ladder path serve directly
    // (65 points crosses the `vtc` parallel threshold).
    let inv = carbon_logic::Inverter::fig2_saturating();
    h.bench("fig2_vtc_trace_65pt", || {
        black_box(inv.vtc(65).expect("sweeps"));
    });

    let ckt = resistor_ladder(16);
    h.bench("dc_sweep_100pt", || {
        black_box(ckt.dc_sweep("v", 0.0, 1.0, 0.01).expect("sweeps"));
    });

    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-8,
            rise: 1e-9,
            fall: 1e-9,
            width: 5e-7,
            period: 0.0,
        },
    )
    .expect("source");
    ckt.resistor("r", "in", "out", 1e3).expect("resistor");
    ckt.capacitor("c", "out", "0", 1e-9).expect("capacitor");
    h.bench("transient_rc_1000_steps", || {
        black_box(ckt.transient(1e-9, 1e-6).expect("integrates"));
    });

    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("r", "in", "out", 1e3).expect("resistor");
    ckt.capacitor("cl", "out", "0", 1e-9).expect("capacitor");
    let freqs: Vec<f64> = (0..100)
        .map(|k| 1e3 * 10f64.powf(k as f64 / 16.0))
        .collect();
    h.bench("ac_sweep_100pt", || {
        black_box(ckt.ac_sweep("vin", &freqs).expect("sweeps"));
    });

    // Sparse AC replay scaling: symbolic analysis once, jωC restamp +
    // numeric replay per frequency point.
    let ac_freqs = log_freqs(50, 1e3, 1e9);
    for n in [32usize, 128] {
        let ckt = rc_ladder(n);
        h.bench(&format!("ac_ladder/{n}"), || {
            black_box(ckt.ac_sweep("vin", &ac_freqs).expect("sweeps"));
        });
    }
    // The dense-complex O(n³)-per-point path on the same 128-stage
    // workload — the baseline the ≥3× sparse speedup is measured
    // against.
    let ckt = rc_ladder(128);
    h.bench("ac_ladder_dense/128", || {
        black_box(
            ckt.ac_sweep_with("vin", &ac_freqs, AcMethod::Dense)
                .expect("sweeps"),
        );
    });

    let ckt = fet_cs_amp();
    h.bench("ac_fet_cs_amp", || {
        black_box(ckt.ac_sweep("vin", &ac_freqs).expect("sweeps"));
    });

    let deck = {
        let mut d = String::from("V1 n0 0 1.0\n");
        for i in 0..64 {
            d.push_str(&format!("Rs{i} n{i} n{} 1k\n", i + 1));
            d.push_str(&format!("Rp{i} n{} 0 1k\n", i + 1));
        }
        d
    };
    h.bench("parse_deck_129_elements", || {
        black_box(parse_deck(&deck).expect("parses"));
    });

    h.finish();
}

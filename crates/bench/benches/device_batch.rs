//! Batched device evaluation: the per-point / per-device dispatch the
//! hot consumers used before the SoA layer, versus the batch kernels.
//!
//! The `campaign_*/10000` pair is the headline: a 10k-device
//! Monte-Carlo campaign (per-device threshold draw, per-device model,
//! one bias evaluation each) the pre-batch way — one fine-grained
//! executor item per device, rebuilding the model per sample — against
//! the batch layer's shape: chunked parameter sampling into a vt lane,
//! then a single `ids_soa_vt` call. On a multi-core host the batch
//! side additionally wins the executor chunking; single-core, the win
//! is the hoisting (per-device RNG-stream setup, distribution and
//! model construction, softplus scale) alone.

use carbon_devices::batch::{par_ids_soa, BatchEval};
use carbon_devices::{AlphaPowerFet, BallisticFet, LinearGnrFet, TableFet};
use carbon_runtime::bench::{black_box, Harness};
use carbon_runtime::{Distribution, Normal};
use carbon_spice::FetCurve;

fn main() {
    let mut h = Harness::group("device_batch");
    let n = 10_000usize;
    // Campaign-shaped lanes: bias points spread over the operating
    // window with incommensurate strides, so no branch pattern repeats.
    let vgs: Vec<f64> = (0..n)
        .map(|i| -0.2 + 1.1 * (i % 131) as f64 / 130.0)
        .collect();
    let vds: Vec<f64> = (0..n)
        .map(|i| 0.05 + 0.85 * (i % 97) as f64 / 96.0)
        .collect();

    // --- The 10k-sample campaign kernel -----------------------------
    let gnr = LinearGnrFet::new(2e-4, 0.35, 90.0, 0.3, 0.5).expect("model builds");
    h.bench(&format!("campaign_scalar/{n}"), || {
        // Pre-batch idiom (cf. sample_device): one executor item per
        // device, distribution and model constructed per sample.
        black_box(carbon_runtime::par_mc_fine(7, n, |i, rng| {
            let vt = Normal::new(0.35, 0.07_f64.max(1e-12))
                .expect("validated")
                .sample(rng);
            gnr.with_vt(vt).ids(vgs[i], vds[i])
        }));
    });
    h.bench(&format!("campaign_soa/{n}"), || {
        // Batch layer: sample the parameter lane on the chunked
        // executor, evaluate all devices in one SoA call.
        let dist = Normal::new(0.35, 0.07_f64.max(1e-12)).expect("validated");
        let vt = carbon_runtime::par_mc(7, n, |_, rng| dist.sample(rng));
        let mut out = vec![0.0; n];
        gnr.ids_soa_vt(&vgs, &vds, &vt, &mut out);
        black_box(out);
    });

    // --- Table lookups: pure kernels and executor entry points ------
    let live = BallisticFet::cnt_fig1().expect("model builds");
    let table = TableFet::sample(&live, (-0.3, 1.2), (-0.1, 1.0), 61, 61).expect("table");
    let mut out = vec![0.0; n];
    h.bench(&format!("table_ids_scalar/{n}"), || {
        for ((o, &g), &d) in out.iter_mut().zip(&vgs).zip(&vds) {
            *o = table.ids(black_box(g), black_box(d));
        }
        black_box(&out);
    });
    h.bench(&format!("table_ids_soa/{n}"), || {
        table.ids_soa(black_box(&vgs), black_box(&vds), &mut out);
        black_box(&out);
    });
    // The pre-batch transfer/tabulation idiom: one executor item per
    // grid point, vs the chunked batch entry point.
    h.bench(&format!("table_par_scalar/{n}"), || {
        black_box(carbon_runtime::par_map(n, |k| {
            table.ids(black_box(vgs[k]), black_box(vds[k]))
        }));
    });
    h.bench(&format!("table_par_soa/{n}"), || {
        black_box(par_ids_soa(&table, black_box(&vgs), black_box(&vds)));
    });

    // --- Monte-Carlo parameter lanes on the alpha-power model -------
    let alpha = AlphaPowerFet::new(0.35, 1.3, 7.2e-4, 0.8, 0.15, 75.0).expect("model builds");
    let vt: Vec<f64> = (0..n)
        .map(|i| 0.25 + 0.2 * (i % 53) as f64 / 52.0)
        .collect();
    h.bench(&format!("alpha_vt_scalar/{n}"), || {
        for (k, o) in out.iter_mut().enumerate() {
            *o = alpha
                .with_vt(black_box(vt[k]))
                .expect("valid vt")
                .ids(vgs[k], vds[k]);
        }
        black_box(&out);
    });
    h.bench(&format!("alpha_vt_soa/{n}"), || {
        alpha.ids_soa_vt(black_box(&vgs), black_box(&vds), black_box(&vt), &mut out);
        black_box(&out);
    });

    h.finish();
}

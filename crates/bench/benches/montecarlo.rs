//! §V statistics workloads and device-model evaluation costs: the
//! Monte-Carlo campaign scaling, sorting arithmetic, and the live
//! ballistic solve versus the table-model lookup that makes transient
//! simulation affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use carbon_devices::{BallisticFet, TableFet};
use carbon_fab::{SortingProcess, VariabilityModel};
use carbon_spice::FetCurve;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_device_montecarlo(c: &mut Criterion) {
    let model = VariabilityModel::park_experiment();
    let mut g = c.benchmark_group("device_montecarlo");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                black_box(model.sample_population(&mut rng, n))
            })
        });
    }
    g.finish();
}

fn bench_sorting(c: &mut Criterion) {
    let p = SortingProcess::gel_chromatography();
    c.bench_function("sorting_five_nines", |b| {
        b.iter(|| black_box(p.passes_to_reach(0.67, 0.99999).expect("reachable")))
    });
}

fn bench_ballistic_eval(c: &mut Criterion) {
    let live = BallisticFet::cnt_fig1().expect("model builds");
    c.bench_function("ballistic_ids_live", |b| {
        b.iter(|| black_box(live.ids(black_box(0.45), black_box(0.37))))
    });
    let table = TableFet::sample(&live, (-0.2, 0.9), (-0.2, 0.9), 61, 61).expect("table");
    c.bench_function("ballistic_ids_table", |b| {
        b.iter(|| black_box(table.ids(black_box(0.45), black_box(0.37))))
    });
}

fn bench_table_build(c: &mut Criterion) {
    let live = BallisticFet::cnt_fig1().expect("model builds");
    let mut g = c.benchmark_group("table_build");
    g.sample_size(10);
    g.bench_function("33x33", |b| {
        b.iter(|| black_box(TableFet::sample(&live, (-0.2, 0.9), (-0.2, 0.9), 33, 33).expect("ok")))
    });
    g.finish();
}

criterion_group!(
    montecarlo,
    bench_device_montecarlo,
    bench_sorting,
    bench_ballistic_eval,
    bench_table_build
);
criterion_main!(montecarlo);

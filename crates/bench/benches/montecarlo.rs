//! §V statistics workloads and device-model evaluation costs: the
//! Monte-Carlo campaign scaling (sequential vs the parallel executor),
//! sorting arithmetic, and the live ballistic solve versus the
//! table-model lookup that makes transient simulation affordable.

use carbon_runtime::bench::{black_box, Harness};
use carbon_runtime::Xoshiro256pp;

use carbon_devices::{BallisticFet, TableFet};
use carbon_fab::{SortingProcess, VariabilityModel};
use carbon_spice::FetCurve;

fn main() {
    let mut h = Harness::group("montecarlo");

    let model = VariabilityModel::park_experiment();
    for n in [1_000usize, 10_000] {
        h.bench(&format!("device_montecarlo/{n}"), || {
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            black_box(model.sample_population(&mut rng, n));
        });
        // The same campaign through the deterministic parallel
        // executor — the speedup (if any) is the multi-core win.
        h.bench(&format!("device_montecarlo_par/{n}"), || {
            black_box(model.sample_population_par(5, n));
        });
    }

    let p = SortingProcess::gel_chromatography();
    h.bench("sorting_five_nines", || {
        black_box(p.passes_to_reach(0.67, 0.99999).expect("reachable"));
    });

    let live = BallisticFet::cnt_fig1().expect("model builds");
    h.bench("ballistic_ids_live", || {
        black_box(live.ids(black_box(0.45), black_box(0.37)));
    });
    let table = TableFet::sample(&live, (-0.2, 0.9), (-0.2, 0.9), 61, 61).expect("table");
    h.bench("ballistic_ids_table", || {
        black_box(table.ids(black_box(0.45), black_box(0.37)));
    });

    h.bench("table_build/33x33", || {
        black_box(TableFet::sample(&live, (-0.2, 0.9), (-0.2, 0.9), 33, 33).expect("ok"));
    });

    h.finish();
}

//! The Fig. 2 experiment as a runnable program: two inverters, one from
//! saturating FETs, one from non-saturating ("real GNR") FETs, their
//! voltage-transfer curves, gains, and noise margins.
//!
//! ```text
//! cargo run --release --example inverter_vtc
//! ```

use carbon_electronics::logic::Inverter;
use carbon_electronics::units::{Capacitance, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let good = Inverter::fig2_saturating();
    let bad = Inverter::fig2_non_saturating();

    let vtc_good = good.vtc(101)?;
    let vtc_bad = bad.vtc(101)?;

    println!("Voltage-transfer curves (V_DD = 1 V):");
    println!(
        "{:>8} {:>18} {:>22}",
        "V_in [V]", "V_out saturating", "V_out non-saturating"
    );
    for k in (0..=100).step_by(10) {
        println!(
            "{:>8.2} {:>18.3} {:>22.3}",
            vtc_good.vin()[k],
            vtc_good.vout()[k],
            vtc_bad.vout()[k]
        );
    }

    let nm_good = vtc_good.noise_margins();
    let nm_bad = vtc_bad.noise_margins();
    println!(
        "\nSaturating inverter   : max |gain| = {:.2}",
        vtc_good.max_abs_gain()
    );
    println!(
        "                        NM_L = {:.2} V, NM_H = {:.2} V (paper: almost 0.4 V)",
        nm_good.low, nm_good.high
    );
    println!(
        "Non-saturating inverter: max |gain| = {:.2}",
        vtc_bad.max_abs_gain()
    );
    println!(
        "                        NM_L = {:.2} V, NM_H = {:.2} V (paper: almost zero)",
        nm_bad.low, nm_bad.high
    );
    println!(
        "\nSupply conduction across the transition: {:.0} % vs {:.0} % of the sweep",
        vtc_good.conduction_fraction() * 100.0,
        vtc_bad.conduction_fraction() * 100.0
    );

    let delays = good.propagation_delay(
        Capacitance::from_femtofarads(10.0),
        Time::from_nanoseconds(1.0),
    )?;
    println!(
        "Saturating inverter delay into the paper's 10 fF load: {:.1} ps",
        delays.average().picoseconds()
    );
    Ok(())
}

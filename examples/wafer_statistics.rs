//! The §V integration-statistics pipeline: synthesis → sorting →
//! placement → a 10,000-device measurement campaign (Park et al. style).
//!
//! ```text
//! cargo run --release --example wafer_statistics
//! ```

use carbon_electronics::experiments::fig7_stats;
use carbon_electronics::fab::stats::histogram;
use carbon_electronics::fab::{
    SelfAssembly, SortingProcess, SynthesisRecipe, VmrProcess, WaferModel,
};
use carbon_runtime::Xoshiro256pp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: what synthesis gives you.
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let recipe = SynthesisRecipe::arc_discharge();
    let batch = recipe.sample_batch(&mut rng, 5000);
    let p0 = SynthesisRecipe::semiconducting_fraction(&batch);
    println!(
        "as-grown batch (d̄ = {:.1} nm): {:.1} % semiconducting — the (n−m) mod 3 lottery",
        recipe.d_mean().nanometers(),
        p0 * 100.0
    );

    // Step 2: purify.
    let process = SortingProcess::gel_chromatography();
    let run = process.run(p0, 4);
    println!("\n{} passes:", process.name());
    for (k, (p, y)) in run.purity.iter().zip(&run.cumulative_yield).enumerate() {
        println!(
            "  pass {k}: purity {:.5} %, material yield {:.1} %",
            p * 100.0,
            y * 100.0
        );
    }

    // Step 3 + 4: place and measure 10,000 devices.
    let fig7 = fig7_stats::run()?;
    print!("\n{fig7}");

    // VMR: the imperfection-immune rescue.
    let vmr = VmrProcess::shulaker();
    let out = vmr.simulate(&mut rng, &SelfAssembly::park_high_density(), 0.99, 20_000);
    println!(
        "VMR at 99 % ink: shorts {:.2} % → {:.3} %, functional {:.1} % → {:.1} %\n",
        out.shorts_before * 100.0,
        out.shorts_after * 100.0,
        out.functional_before * 100.0,
        out.functional_after * 100.0
    );

    // A wafer of one-bit computers.
    let wafer = WaferModel::shulaker_run();
    println!(
        "wafer map ({} dies, {:.0} working computers expected):",
        wafer.die_count(),
        wafer.expected_good_dies()
    );
    println!("{}", wafer.sample(&mut rng));

    // A threshold-voltage histogram like the Park paper's figures.
    let vt = fig7.population.thresholds();
    let (centres, counts) = histogram(&vt, 0.1, 0.6, 10);
    println!("V_T histogram of the functional devices:");
    let max = *counts.iter().max().unwrap_or(&1) as f64;
    for (c, n) in centres.iter().zip(&counts) {
        let bar = "#".repeat((*n as f64 / max * 50.0).round() as usize);
        println!("  {c:.2} V | {bar} {n}");
    }
    Ok(())
}

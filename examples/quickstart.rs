//! Quickstart: build the paper's Fig. 1 devices and sweep them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use carbon_electronics::devices::{BallisticFet, Fet, LinearGnrFet};
use carbon_electronics::units::eng::Eng;
use carbon_electronics::units::Voltage;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // The two simulated devices of Fig. 1: same 0.56 eV bandgap, one
    // carbon nanotube, one graphene nanoribbon.
    let cnt = BallisticFet::cnt_fig1()?;
    let gnr = BallisticFet::gnr_fig1()?;
    // And the device the paper says you actually get: a gate-steered
    // linear resistor.
    let real_gnr = LinearGnrFet::sub10nm_fig1();

    let vds = Voltage::from_volts(0.5);
    println!("Transfer characteristics at V_DS = 0.5 V (ballistic theory):");
    println!("{:>8} {:>14} {:>14}", "V_GS [V]", "I_D CNT", "I_D GNR");
    for k in 0..=10 {
        let vg = Voltage::from_volts(k as f64 * 0.09 - 0.1);
        let i_cnt = cnt.drain_current(vg, vds);
        let i_gnr = gnr.drain_current(vg, vds);
        println!(
            "{:>8.2} {:>13}A {:>13}A",
            vg.volts(),
            Eng(i_cnt.amperes()),
            Eng(i_gnr.amperes())
        );
    }

    println!("\nOutput characteristics at V_GS = 0.5 V:");
    let out_cnt = cnt.output(Voltage::ZERO, vds, 26, Voltage::from_volts(0.5));
    let out_real = real_gnr.output(Voltage::ZERO, vds, 26, Voltage::from_volts(1.0));
    println!(
        "CNT saturation figure:      {:.2} (≫1: saturates like Fig. 1(b))",
        out_cnt.saturation_figure()
    );
    println!(
        "real GNR saturation figure: {:.2} (≈1: the linear resistor of Fig. 1(b))",
        out_real.saturation_figure()
    );
    println!(
        "\nCNT I(0.5 V)/I(0.2 V) = {:.2} — \"the current hardly changes\"",
        out_cnt.current_at(0.5) / out_cnt.current_at(0.2)
    );
    Ok(())
}

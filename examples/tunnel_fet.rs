//! The Fig. 6 CNT tunnel FET: sweep the gated PIN diode in both bias
//! directions and extract the sub-thermal swing.
//!
//! ```text
//! cargo run --release --example tunnel_fet
//! ```

use carbon_electronics::devices::CntTfet;
use carbon_electronics::experiments::fig6;
use carbon_electronics::spice::FetCurve;
use carbon_electronics::units::consts::SS_THERMAL_LIMIT_MV_PER_DEC;
use carbon_electronics::units::Voltage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = fig6::run()?;
    print!("{report}");

    // Forward branch: an ordinary diode the gate barely touches.
    let tfet = CntTfet::fig6();
    println!("forward (diode) branch, I(V_D) at three gate voltages:");
    println!(
        "{:>9} {:>13} {:>13} {:>13}",
        "V_D [V]", "V_G=-1 V", "V_G=0 V", "V_G=+0.5 V"
    );
    for k in 0..=6 {
        let vd = k as f64 * 0.08;
        println!(
            "{:>9.2} {:>13.3e} {:>13.3e} {:>13.3e}",
            vd,
            tfet.ids(-1.0, vd),
            tfet.ids(0.0, vd),
            tfet.ids(0.5, vd)
        );
    }
    println!(
        "\nthermal limit is {SS_THERMAL_LIMIT_MV_PER_DEC:.1} mV/dec; the steepest interval of the \
         reverse branch beats it at {:.1} mV/dec",
        report.best_swing
    );
    // Where does the turn-on sit? (Fig. 6(b): sharp rise with negative gate.)
    let v_half = report
        .reverse_transfer
        .bias_at_current(report.reverse_transfer.current()[0] / 100.0)?;
    println!(
        "gate voltage two decades below on-state: {:.2} V",
        Voltage::from_volts(v_half).volts()
    );
    Ok(())
}

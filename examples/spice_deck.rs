//! Driving the simulator from a classic SPICE deck: parse a netlist
//! string, solve the operating point, sweep it, and integrate a
//! transient — no Rust netlist-building code.
//!
//! ```text
//! cargo run --release --example spice_deck
//! ```

use carbon_electronics::spice::parser::parse_deck;

const DECK: &str = "
* full-wave-ish diode clipper with an RC tail
V1   in   0    SIN(0 2 1meg)
R1   in   a    1k
D1   a    0    is=1e-15 n=1.0
D2   0    a    is=1e-15 n=1.0
R2   a    out  10k
C1   out  0    1n
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ckt = parse_deck(DECK)?;
    println!("parsed {} elements from the deck", ckt.num_elements());

    // DC operating point (source at its offset, 0 V).
    let op = ckt.op()?;
    println!(
        "DC operating point: V(a) = {:.4} V, V(out) = {:.4} V",
        op.voltage("a")?,
        op.voltage("out")?
    );

    // Transient: the clipper limits the 2 V sine to the diode drops.
    let tran = ckt.transient(5e-9, 3e-6)?;
    let va = tran.voltages("a")?;
    let peak = va.iter().cloned().fold(f64::MIN, f64::max);
    let trough = va.iter().cloned().fold(f64::MAX, f64::min);
    println!("clipped node swings {trough:.3} V … {peak:.3} V (diodes clamp a ±2 V drive)");
    assert!(peak < 1.0 && trough > -1.0, "clipping works");

    // And the same circuit parsed again with a DC source for a sweep.
    let ckt2 = parse_deck(
        "V1 in 0 0
         R1 in a 1k
         D1 a 0 is=1e-15 n=1.0
         D2 0 a is=1e-15 n=1.0",
    )?;
    let sweep = ckt2.dc_sweep("v1", -2.0, 2.0, 0.1)?;
    println!("\ntransfer V(a) vs V(in):");
    for k in (0..sweep.len()).step_by(8) {
        println!(
            "  {:>6.2} V → {:>7.4} V",
            sweep.sweep_values()[k],
            sweep.voltages("a")?[k]
        );
    }
    Ok(())
}

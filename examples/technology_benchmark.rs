//! The Fig. 5 benchmark as a runnable program: simulated CNT-FETs
//! against the Si/InAs/InGaAs literature background, plus the §II/§III
//! scalar claims (trigate vs CNT, 11 kΩ, dark space).
//!
//! ```text
//! cargo run --release --example technology_benchmark
//! ```

use carbon_electronics::experiments::{claims, fig3, fig5};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig5 = fig5::run()?;
    print!("{fig5}");

    println!();
    let claims = claims::run()?;
    print!("{claims}");

    // The electrostatic backdrop: why the CNT can be benchmarked at all
    // at these gate lengths.
    let fig3 = fig3::run()?;
    print!("{fig3}");
    Ok(())
}

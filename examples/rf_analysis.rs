//! The §II RF argument as a runnable program: small-signal figures of
//! merit of a saturating CNT-FET versus a non-saturating GNR, plus a
//! Bode sweep of an RC stage through the AC engine.
//!
//! ```text
//! cargo run --release --example rf_analysis
//! ```

use carbon_electronics::experiments::rf;
use carbon_electronics::spice::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cmp = rf::run()?;
    print!("{cmp}");

    // Bonus: a Bode plot straight from the AC engine.
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("r", "in", "out", 1e3)?;
    ckt.capacitor("c", "out", "0", 1e-12)?;
    let freqs: Vec<f64> = (0..9).map(|k| 1e6 * 10f64.powf(k as f64 / 2.0)).collect();
    let ac = ckt.ac_sweep("vin", &freqs)?;
    println!("RC low-pass Bode sweep (R = 1 kΩ, C = 1 pF, f_c ≈ 159 MHz):");
    println!("{:>12} {:>10} {:>10}", "f [Hz]", "|H| [dB]", "∠H [deg]");
    let mag = ac.magnitude("out")?;
    let ph = ac.phase("out")?;
    for ((f, m), p) in freqs.iter().zip(&mag).zip(&ph) {
        println!(
            "{:>12.3e} {:>10.2} {:>10.1}",
            f,
            20.0 * m.log10(),
            p.to_degrees()
        );
    }
    if let Some(fc) = ac.corner_frequency("out")? {
        println!("−3 dB corner: {fc:.3e} Hz");
    }
    Ok(())
}

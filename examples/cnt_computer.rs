//! The §V one-bit CNT computer, end to end: CNT inverter → ring
//! oscillator → SUBNEG machine running counting and sorting → yield
//! versus purity for the 178-CNFET design.
//!
//! ```text
//! cargo run --release --example cnt_computer
//! ```

use carbon_electronics::experiments::fig8_computer;
use carbon_electronics::logic::assembler::assemble;
use carbon_electronics::logic::computer::{sorting_program, SubnegComputer};
use carbon_electronics::units::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig8 = fig8_computer::run()?;
    print!("{fig8}");

    // Run a few extra sorting workloads on the same machine to show the
    // computer is general, not a single hard-wired demo.
    println!("extra sorting workloads (min, max):");
    for (x, y) in [(42, 17), (5, 23), (7, 7), (0, 12)] {
        let (prog, mem) = sorting_program(x, y);
        let mut cpu = SubnegComputer::new(prog, mem, 8, Time::from_picoseconds(50.0))?;
        cpu.run(1000)?;
        println!(
            "  sort({x:>2}, {y:>2}) → ({}, {})",
            cpu.memory()[2],
            cpu.memory()[3]
        );
    }
    // And a program written in SUBNEG assembly, as one would actually
    // program the machine.
    let program = assemble(
        "
        ; multiply 6 × 4 by repeated addition (SUBNEG-style):
        ; acc -= -x  is  acc += x. count starts at 3 so the add runs
        ; four times (count 3, 2, 1, 0) before going negative.
        .data x      6
        .data negx   0
        .data count  3
        .data one    1
        .data zero   0
        .data always -1
        .data acc    0

              x    negx  loop    ; negx = -x (jump falls through)
        loop: negx acc   end     ; acc += x (never negative here)
              one  count end     ; count -= 1; exit when negative
              zero always loop   ; unconditional jump back
        end:
        ",
    )?;
    // The loop above runs until count goes negative; cap steps and read
    // the accumulator.
    let acc = program.address_of("acc")?;
    let mut cpu = SubnegComputer::new(
        program.instructions,
        program.memory,
        8,
        Time::from_picoseconds(30.0),
    )?;
    let (_, stats) = cpu.run(200)?;
    println!(
        "\nassembled multiply demo: 6 × 4 = acc = {} after {} instructions",
        cpu.memory()[acc],
        stats.instructions
    );
    assert_eq!(cpu.memory()[acc], 24);
    Ok(())
}

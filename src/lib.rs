//! Umbrella crate for the `carbon-electronics` workspace — a Rust
//! reproduction of F. Kreupl, *"Advancing CMOS with Carbon Electronics"*,
//! DATE 2014.
//!
//! This crate re-exports the workspace's public crates under short module
//! names so examples and downstream users can depend on a single crate:
//!
//! * [`units`] — physical constants and typed quantities
//! * [`band`] — CNT/GNR band structure and carrier statistics
//! * [`electro`] — short-channel electrostatics (scale length, DIBL, SS)
//! * [`spice`] — the from-scratch nonlinear circuit simulator
//! * [`devices`] — compact transistor models (ballistic CNT/GNR FET,
//!   alpha-power MOSFET, CNT tunnel FET, series resistance)
//! * [`logic`] — inverters, ring oscillators, the SUBNEG one-bit computer
//! * [`fab`] — wafer-scale integration statistics and yield models
//! * [`experiments`] — one module per paper figure/claim (`carbon-core`)
//! * [`runtime`] — deterministic PRNG, distributions, and the parallel
//!   Monte-Carlo/sweep executor underneath every stochastic experiment
//!
//! # Quickstart
//!
//! ```
//! use carbon_electronics::devices::{BallisticFet, Fet};
//! use carbon_electronics::units::Voltage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
//! // The paper's Fig. 1 device: a CNT-FET with a 0.56 eV bandgap.
//! let fet = BallisticFet::cnt_fig1()?;
//! let id = fet.drain_current(Voltage::from_volts(0.5), Voltage::from_volts(0.5));
//! assert!(id.microamperes() > 1.0);
//! # Ok(())
//! # }
//! ```

pub use carbon_band as band;
pub use carbon_core as experiments;
pub use carbon_devices as devices;
pub use carbon_electro as electro;
pub use carbon_fab as fab;
pub use carbon_logic as logic;
pub use carbon_runtime as runtime;
pub use carbon_spice as spice;
pub use carbon_units as units;

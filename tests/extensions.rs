//! Integration tests for the extension features: AC analysis + RF
//! figures of merit, the SPICE-deck parser, static gates, VMR, and
//! single-chirality sorting — each exercised through the umbrella crate.

use std::sync::Arc;

use carbon_electronics::band::Chirality;
use carbon_electronics::devices::{AlphaPowerFet, BallisticFet, TableFet};
use carbon_electronics::experiments::{ablations, rf};
use carbon_electronics::fab::{ChiralitySeparation, SelfAssembly, SynthesisRecipe, VmrProcess};
use carbon_electronics::logic::{GateTopology, RfStage, StaticGate};
use carbon_electronics::spice::parser::parse_deck;
use carbon_electronics::units::{Capacitance, Resistance, Voltage};
use carbon_runtime::Xoshiro256pp;

#[test]
fn rf_experiment_reproduces_the_schwierz_argument() {
    let cmp = rf::run().expect("rf experiment runs");
    assert!(cmp.cnt.voltage_gain > 5.0);
    assert!(cmp.gnr.voltage_gain < 2.0);
    assert!(cmp.cnt.fmax > 3.0 * cmp.gnr.fmax);
    // The AC engine agrees with the analytic small-signal picture.
    assert!(cmp.cnt_simulated_gain > 2.0 * cmp.gnr_simulated_gain);
}

#[test]
fn ac_analysis_of_a_tabulated_cnt_stage() {
    // End-to-end: ballistic model → table → RF stage → AC simulation.
    let live = BallisticFet::cnt_fig1().expect("model builds");
    let fast = TableFet::sample(&live, (-0.2, 0.8), (-0.2, 0.8), 41, 41).expect("table");
    let stage = RfStage::new(
        Arc::new(fast),
        Voltage::from_volts(0.5),
        Voltage::from_volts(0.4),
        Capacitance::from_attofarads(8.0),
        Capacitance::from_attofarads(4.0),
        Resistance::from_ohms(100.0),
    )
    .expect("stage builds");
    let gain = stage
        .simulated_voltage_gain(Resistance::from_kilohms(500.0))
        .expect("ac solves");
    assert!(gain > 2.0, "tabulated CNT still amplifies: {gain}");
}

#[test]
fn deck_parser_to_all_four_analyses() {
    let ckt = parse_deck(
        "* RC band-limited divider
         V1 in 0 PULSE(0 1 1u 10n 10n 100u 0)
         R1 in mid 10k
         R2 mid 0 10k
         C1 mid 0 1n",
    )
    .expect("parses");
    let op = ckt.op().expect("op");
    assert!((op.voltage("mid").expect("node") - 0.0).abs() < 1e-6);
    let sweep = ckt.dc_sweep("V1", 0.0, 1.0, 0.1).expect("sweep");
    assert!((sweep.voltages("mid").expect("node")[10] - 0.5).abs() < 1e-6);
    let tran = ckt.transient(1e-7, 2e-5).expect("transient");
    let v_end = *tran.voltages("mid").expect("node").last().expect("points");
    assert!(
        (v_end - 0.5).abs() < 0.02,
        "settles to the divider: {v_end}"
    );
    let ac = ckt.ac_sweep("v1", &[1e2, 1e5, 1e8]).expect("ac");
    let mag = ac.magnitude("mid").expect("node");
    assert!(mag[0] > 0.49 && mag[2] < 0.05, "low-pass divider");
}

#[test]
fn nand_nor_gates_work_with_tabulated_cnt_devices() {
    let n_live = BallisticFet::cnt_fig1().expect("builds");
    let band = carbon_electronics::band::CntBand::from_bandgap(
        carbon_electronics::units::Energy::from_electron_volts(0.56),
    )
    .expect("gap ok");
    let p_live = BallisticFet::builder(Arc::new(band))
        .threshold_voltage(0.3)
        .p_type()
        .build()
        .expect("builds");
    let vdd = 0.5;
    let n = Arc::new(TableFet::sample(&n_live, (-0.2, 0.7), (-0.2, 0.7), 41, 41).expect("t"));
    let p = Arc::new(TableFet::sample(&p_live, (-0.7, 0.2), (-0.7, 0.2), 41, 41).expect("t"));
    for topology in [GateTopology::Nand2, GateTopology::Nor2] {
        let gate = StaticGate::new(topology, n.clone(), p.clone(), Voltage::from_volts(vdd))
            .expect("gate builds");
        assert!(
            gate.is_functional().expect("solves"),
            "{topology:?} restores levels with CNT devices"
        );
    }
    // Sanity with the reference silicon-like pair too.
    let gate = StaticGate::new(
        GateTopology::Nand2,
        Arc::new(AlphaPowerFet::fig2_nfet()),
        Arc::new(AlphaPowerFet::fig2_pfet()),
        Voltage::from_volts(1.0),
    )
    .expect("gate builds");
    assert!(gate.is_functional().expect("solves"));
}

#[test]
fn vmr_then_yield_closes_the_loop() {
    let mut rng = Xoshiro256pp::seed_from_u64(31);
    let vmr = VmrProcess::shulaker();
    let out = vmr.simulate(&mut rng, &SelfAssembly::park_high_density(), 0.95, 20_000);
    assert!(out.functional_after > out.functional_before);
    assert!(out.shorts_after < out.shorts_before / 20.0);
}

#[test]
fn single_chirality_pipeline() {
    let mut rng = Xoshiro256pp::seed_from_u64(41);
    let target = Chirality::new(13, 0).expect("valid");
    let recipe = SynthesisRecipe::new(
        target.diameter(),
        carbon_electronics::units::Length::from_nanometers(0.08),
    )
    .expect("recipe");
    let sep = ChiralitySeparation::dna_grade(target).expect("stage");
    let mut batch = recipe.sample_batch(&mut rng, 10_000);
    let before = sep.purity(&batch);
    for _ in 0..3 {
        batch = sep.pass(&mut rng, &batch);
    }
    let after = sep.purity(&batch);
    assert!(after > before, "{before} → {after}");
}

#[test]
fn ablations_expose_the_design_knobs() {
    let a = ablations::run().expect("ablations run");
    assert!(a.saturation.first().expect("rows").max_gain > 1.0);
    assert!(a.saturation.last().expect("rows").max_gain < 1.0);
    assert!(a.tfet.first().expect("rows").1 > a.tfet.last().expect("rows").1);
}

//! Integration tests: every paper artifact reproduced end-to-end through
//! the public API of the umbrella crate.
//!
//! These are the acceptance tests of the reproduction: each asserts the
//! *shape* claims of a figure (who wins, what saturates, what collapses)
//! rather than absolute currents — see EXPERIMENTS.md for the
//! paper-vs-measured table.

use carbon_electronics::experiments::{
    claims, fig1, fig2, fig3, fig4, fig5, fig6, fig7_stats, fig8_computer,
};

#[test]
fn fig1_cnt_and_gnr_theory_overlap_but_real_gnr_is_ohmic() {
    let fig = fig1::run().expect("fig1 runs");
    assert!(fig.transfer_log_gap < 0.8, "log-plot overlap");
    let [cnt, gnr_sim, real] = fig.saturation_figures;
    assert!(
        cnt > 2.0 && gnr_sim > 2.0,
        "both simulated devices saturate"
    );
    assert!(real < 1.8, "the measured-like GNR does not");
    assert!(fig.cnt_sat_ratio < 1.35, "current hardly changes 0.2→0.5 V");
}

#[test]
fn fig2_saturation_decides_whether_logic_works() {
    let fig = fig2::run().expect("fig2 runs");
    assert!(fig.max_gain[0] > 3.0 && fig.max_gain[1] < 1.0);
    assert!(fig.margins_saturating.low > 0.25 && fig.margins_saturating.high > 0.25);
    assert_eq!(
        (
            fig.margins_non_saturating.low,
            fig.margins_non_saturating.high
        ),
        (0.0, 0.0),
        "noise margin is almost zero"
    );
}

#[test]
fn fig3_gate_all_around_wins_and_carbon_has_no_darkspace() {
    let fig = fig3::run().expect("fig3 runs");
    for k in 0..fig.gate_lengths_nm.len() {
        assert!(fig.geometries[2].ss[k] <= fig.geometries[0].ss[k]);
        assert!(fig.geometries[2].dibl[k] <= fig.geometries[0].dibl[k]);
    }
    let cet: std::collections::HashMap<_, _> = fig
        .cet_by_material
        .iter()
        .map(|(n, c)| (n.as_str(), *c))
        .collect();
    assert!(cet["CNT"] < cet["Si"]);
    assert!(cet["Si"] < cet["InAs"]);
}

#[test]
fn fig4_contact_resistance_reduces_and_linearizes() {
    let fig = fig4::run().expect("fig4 runs");
    assert!(fig.current_reduction > 1.4);
    assert!(fig.saturation[1] < fig.saturation[0]);
}

#[test]
fn fig5_cnt_sits_on_top_of_the_benchmark() {
    let fig = fig5::run().expect("fig5 runs");
    assert!(
        fig.min_advantage > 1.0,
        "CNTFET outperforms the alternatives"
    );
    assert!(!fig.cnt.is_empty() && fig.references.len() == 3);
}

#[test]
fn fig6_tfet_is_sub_thermal_with_high_drive() {
    let fig = fig6::run().expect("fig6 runs");
    assert!((60.0..105.0).contains(&fig.average_swing));
    assert!(fig.best_swing < 59.6);
    assert!(fig.on_density_ma_per_um > 0.3);
    assert!(fig.forward_gate_insensitive);
}

#[test]
fn scalar_claims_hold() {
    let c = claims::run().expect("claims run");
    assert!((c.trigate_ion * 1e6 - 66.0).abs() < 5.0);
    assert!(c.cross_section_ratio > 300.0);
    assert!(c.gnr_on_off > 1e6);
    assert!((c.cnt_series_kohm - 11.0).abs() < 1.5);
}

#[test]
fn section5_statistics_and_computer() {
    let stats = fig7_stats::run().expect("fig7 runs");
    assert_eq!(stats.population.len(), 10_000);
    assert!(stats.fractions[0] > 0.5);

    let computer = fig8_computer::run().expect("fig8 runs");
    assert_eq!(computer.sorted, (3, 9), "the CNT computer sorts");
    assert!(computer.inverter_gain > 1.5, "CNT logic regenerates");
    let first = computer.yield_vs_purity.first().expect("rows");
    let last = computer.yield_vs_purity.last().expect("rows");
    assert!(last.2 > first.2, "purity buys computer yield");
}

//! Cross-crate integration: the same compact model flowing through
//! band structure → device → circuit → logic, plus fab-to-logic yield
//! composition.

use std::sync::Arc;

use carbon_electronics::band::{Band1d, Chirality, CntBand};
use carbon_electronics::devices::{BallisticFet, SeriesResistance, TableFet};
use carbon_electronics::fab::{CircuitYield, SynthesisRecipe, VariabilityModel};
use carbon_electronics::logic::Inverter;
use carbon_electronics::spice::Circuit;
use carbon_electronics::units::{Energy, Length, Resistance, Voltage};
use carbon_runtime::Xoshiro256pp;

#[test]
fn chirality_to_circuit_pipeline() {
    // Pick a tube by bandgap, build its band structure, wrap it in the
    // ballistic model, and put it in a common-source circuit.
    let chirality = Chirality::with_bandgap_near(0.6).expect("tube exists");
    let band = CntBand::from_chirality(chirality).expect("semiconducting");
    assert!(band.bandgap().electron_volts() > 0.4);
    let fet = Arc::new(
        BallisticFet::builder(Arc::new(band))
            .threshold_voltage(0.25)
            .build()
            .expect("valid device"),
    );
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 0.8);
    ckt.voltage_source("vg", "g", "0", 0.6);
    ckt.resistor("rl", "vdd", "d", 20e3).expect("resistor");
    ckt.fet("m1", "d", "g", "0", fet).expect("fet");
    let op = ckt.op().expect("operating point");
    let vd = op.voltage("d").expect("node exists");
    assert!(
        vd > 0.0 && vd < 0.8,
        "transistor pulls the output between the rails: {vd}"
    );
}

#[test]
fn series_wrapped_table_model_in_an_inverter() {
    // Compose three device layers: ballistic model → contact resistance
    // → table acceleration → inverter.
    let n_live = BallisticFet::cnt_fig1().expect("model builds");
    let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).expect("gap ok");
    let p_live = BallisticFet::builder(Arc::new(band))
        .threshold_voltage(0.3)
        .p_type()
        .width(Length::from_nanometers(1.5))
        .build()
        .expect("p-type builds");
    let r = Resistance::from_kilohms(5.5);
    let n_contacted = SeriesResistance::symmetric(Arc::new(n_live), r);
    let p_contacted = SeriesResistance::symmetric(Arc::new(p_live), r);
    let n_fast =
        TableFet::sample(&n_contacted, (-0.2, 0.7), (-0.2, 0.7), 41, 41).expect("table builds");
    let p_fast =
        TableFet::sample(&p_contacted, (-0.7, 0.2), (-0.7, 0.2), 41, 41).expect("table builds");
    let inv = Inverter::new(Arc::new(n_fast), Arc::new(p_fast), Voltage::from_volts(0.5))
        .expect("inverter builds");
    let vtc = inv.vtc(61).expect("vtc solves");
    assert!(
        vtc.max_abs_gain() > 1.2,
        "even contacted CNTs regenerate at 0.5 V"
    );
    assert!(vtc.vout()[0] > 0.45, "output high near the rail");
}

#[test]
fn synthesis_statistics_feed_yield_model() {
    let mut rng = Xoshiro256pp::seed_from_u64(123);
    let batch = SynthesisRecipe::arc_discharge().sample_batch(&mut rng, 3000);
    let purity = SynthesisRecipe::semiconducting_fraction(&batch);
    // Un-sorted material: computer yield is hopeless.
    let pop = VariabilityModel::new(
        carbon_electronics::fab::SelfAssembly::park_high_density(),
        purity,
        0.35,
        0.07,
        10e-6,
        0.4,
    )
    .expect("model builds")
    .sample_population(&mut rng, 5000);
    let yield_ = CircuitYield::new(pop.functional_yield()).expect("probability");
    let computer = yield_.all_of(CircuitYield::SHULAKER_COMPUTER_CNFETS);
    assert!(
        computer < 1e-6,
        "as-grown material cannot build a 178-FET computer: {computer:.2e}"
    );
}

#[test]
fn quantum_capacitance_consistent_between_band_and_device() {
    // The charging feedback inside the ballistic model is the band's
    // quantum capacitance; check they move together.
    let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).expect("gap ok");
    let t = carbon_electronics::units::Temperature::room();
    let cq_gap = band.quantum_capacitance(Energy::ZERO, t);
    let cq_edge = band.quantum_capacitance(Energy::from_electron_volts(0.28), t);
    assert!(cq_edge > cq_gap);
    // A device with C_ins far below Cq is insulator-limited: halving
    // C_ins should halve the gate's grip (check via on-current drop).
    let weak = BallisticFet::builder(Arc::new(band.clone()))
        .gate_capacitance_per_length(1e-11)
        .threshold_voltage(0.3)
        .build()
        .expect("builds");
    let strong = BallisticFet::builder(Arc::new(band))
        .gate_capacitance_per_length(1e-9)
        .threshold_voltage(0.3)
        .build()
        .expect("builds");
    assert!(strong.ids(0.5, 0.5) > weak.ids(0.5, 0.5));
}

use carbon_electronics::spice::FetCurve;

//! Cross-crate property-based tests: invariants that must hold for
//! randomly drawn parameters, not just the presets the experiments use.

use std::sync::Arc;

use carbon_electronics::band::{Band1d, CntBand};
use carbon_electronics::devices::{
    AlphaPowerFet, BallisticFet, LinearGnrFet, SeriesResistance, TableFet,
};
use carbon_electronics::fab::{CircuitYield, SortingProcess};
use carbon_electronics::spice::parser::parse_deck;
use carbon_electronics::spice::{Circuit, FetCurve, Waveform};
use carbon_electronics::units::{Energy, Resistance, Temperature};
use carbon_runtime::prop::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any random R-divider deck must solve to the analytic division.
    #[test]
    fn parsed_divider_matches_analytic(
        r1 in 10.0_f64..1e6,
        r2 in 10.0_f64..1e6,
        v in -10.0_f64..10.0,
    ) {
        let deck = format!("V1 in 0 {v}\nR1 in out {r1}\nR2 out 0 {r2}");
        let ckt = parse_deck(&deck).expect("parses");
        let op = ckt.op().expect("solves");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage("out").expect("node") - expect).abs() < 1e-6 + 1e-6 * expect.abs());
    }

    /// Waveforms never exceed their construction envelope.
    #[test]
    fn pulse_waveform_bounded(
        low in -2.0_f64..2.0,
        high in -2.0_f64..2.0,
        t in 0.0_f64..1e-6,
        width in 1e-9_f64..1e-7,
        period in 0.0_f64..2e-7,
    ) {
        let w = Waveform::Pulse {
            low,
            high,
            delay: 1e-8,
            rise: 1e-9,
            fall: 1e-9,
            width,
            period,
        };
        let v = w.value_at(t);
        let (lo, hi) = (low.min(high), low.max(high));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "v = {v} outside [{lo}, {hi}]");
    }

    /// Series resistance can only reduce the current magnitude, for any
    /// bias and any resistance.
    #[test]
    fn series_resistance_never_amplifies(
        vgs in -0.2_f64..0.8,
        vds in -0.5_f64..0.5,
        r_kohm in 0.1_f64..500.0,
    ) {
        let inner = Arc::new(AlphaPowerFet::fig2_nfet());
        let loaded = SeriesResistance::symmetric(inner.clone(), Resistance::from_kilohms(r_kohm));
        let i0 = inner.ids(vgs, vds).abs();
        let i1 = loaded.ids(vgs, vds).abs();
        prop_assert!(i1 <= i0 * (1.0 + 1e-6) + 1e-18, "loaded {i1:.3e} > unloaded {i0:.3e}");
    }

    /// Table models stay within the sampled model's range on the grid
    /// window (bilinear interpolation cannot overshoot the corner
    /// values of its cell).
    #[test]
    fn table_model_is_bounded_by_samples(
        vgs in 0.0_f64..1.0,
        vds in 0.0_f64..1.0,
    ) {
        let inner = AlphaPowerFet::fig2_nfet();
        let table = TableFet::sample(&inner, (0.0, 1.0), (0.0, 1.0), 21, 21).expect("table");
        let v = table.ids(vgs, vds);
        // Global bounds of the sampled function on the window.
        let max = inner.ids(1.0, 1.0);
        prop_assert!(v >= -1e-12 && v <= max * 1.0001, "v = {v:.3e}");
    }

    /// Sorting enrichment is monotone in purity and selectivity.
    #[test]
    fn enrichment_monotone(
        p in 0.01_f64..0.99,
        s1 in 0.55_f64..0.95,
        ds in 0.001_f64..0.04,
    ) {
        let weak = SortingProcess::new("weak", s1, 0.9).expect("valid");
        let strong = SortingProcess::new("strong", s1 + ds, 0.9).expect("valid");
        prop_assert!(weak.enrich(p) >= p);
        prop_assert!(strong.enrich(p) >= weak.enrich(p));
    }

    /// Circuit yield is monotone in device yield and anti-monotone in
    /// device count.
    #[test]
    fn yield_monotonicity(y in 0.5_f64..1.0, dy in 0.0_f64..0.001, n in 1u32..500) {
        let a = CircuitYield::new(y).expect("probability");
        let b = CircuitYield::new((y + dy).min(1.0)).expect("probability");
        prop_assert!(b.all_of(n) >= a.all_of(n));
        prop_assert!(a.all_of(n + 1) <= a.all_of(n));
    }

    /// The ballistic model's directed current is always bounded by the
    /// Landauer limit of its populated subbands.
    #[test]
    fn directed_current_below_landauer(mu_ev in -0.3_f64..1.2) {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).expect("gap");
        let t = Temperature::room();
        let i = band.directed_current(Energy::from_electron_volts(mu_ev), t);
        // Exact bound: kT·ln(1 + e^(x/kT)) ≤ max(x, 0) + kT·ln 2 per
        // subband, so I⁺ ≤ Σ g·(q/h)·q·(max(µ − Δ, 0) + kT·ln 2).
        let q_over_h = carbon_electronics::units::consts::Q_E
            / carbon_electronics::units::consts::PLANCK_H;
        let kt_ev = t.thermal_voltage().volts();
        let bound: f64 = band
            .subbands()
            .iter()
            .map(|s| {
                let window =
                    (mu_ev - s.edge.electron_volts()).max(0.0) + kt_ev * std::f64::consts::LN_2;
                s.degeneracy * q_over_h * window * carbon_electronics::units::consts::Q_E
            })
            .sum();
        prop_assert!(i <= bound * 1.01 + 1e-18, "I = {i:.3e} vs bound {bound:.3e}");
    }

    /// Any saturating alpha-power inverter with reasonable symmetric
    /// devices produces a monotone non-increasing VTC.
    #[test]
    fn random_inverter_vtc_is_monotone(
        vt in 0.15_f64..0.45,
        lambda in 0.0_f64..0.5,
    ) {
        let nfet = AlphaPowerFet::new(vt, 1.3, 7.2e-4, 0.8, lambda, 75.0).expect("valid");
        let pfet = nfet.clone().into_p_type();
        let inv = carbon_electronics::logic::Inverter::new(
            Arc::new(nfet),
            Arc::new(pfet),
            carbon_electronics::units::Voltage::from_volts(1.0),
        )
        .expect("inverter");
        let vtc = inv.vtc(41).expect("solves");
        prop_assert!(
            vtc.vout().windows(2).all(|w| w[1] <= w[0] + 1e-6),
            "non-monotone VTC"
        );
    }

    /// The non-saturating GNR stays quasi-ohmic for any in-range gate
    /// drive: conductance at 0.4 V bias within 25 % of the small-signal
    /// conductance.
    #[test]
    fn linear_gnr_is_quasi_ohmic(vgs in 0.4_f64..1.2) {
        let g = LinearGnrFet::sub10nm_fig1();
        let g_small = g.ids(vgs, 0.01) / 0.01;
        let g_large = g.ids(vgs, 0.4) / 0.4;
        prop_assert!((g_large / g_small - 1.0).abs() < 0.25);
    }

    /// DC sweeps of a diode loop are continuous: adjacent points differ
    /// by a bounded step (Newton continuation does not jump branches).
    #[test]
    fn diode_sweep_is_continuous(r in 100.0_f64..10e3) {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "in", "0", 0.0);
        ckt.resistor("r", "in", "d", r).expect("resistor");
        ckt.diode("d1", "d", "0", 1e-15, 1.0).expect("diode");
        let sweep = ckt.dc_sweep("v", -1.0, 2.0, 0.05).expect("sweeps");
        let vd = sweep.voltages("d").expect("node");
        prop_assert!(vd.windows(2).all(|w| (w[1] - w[0]).abs() < 0.2));
    }
}

// The ballistic CNT device: monotone transfer for random device builds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_ballistic_builds_are_well_behaved(
        gap_ev in 0.4_f64..0.9,
        vt in 0.2_f64..0.4,
        c_ins in 1e-10_f64..1e-9,
    ) {
        let band = CntBand::from_bandgap(Energy::from_electron_volts(gap_ev)).expect("gap");
        let fet = BallisticFet::builder(Arc::new(band))
            .threshold_voltage(vt)
            .gate_capacitance_per_length(c_ins)
            .build()
            .expect("builds");
        let mut prev = fet.ids(-0.1, 0.5);
        for k in 0..12 {
            let vg = -0.1 + k as f64 * 0.08;
            let i = fet.ids(vg, 0.5);
            prop_assert!(i >= prev * 0.999, "monotone at vg = {vg}");
            prop_assert!(i.is_finite() && i >= 0.0);
            prev = i;
        }
    }
}

#!/usr/bin/env bash
# Hermetic CI gate for the carbon-electronics workspace.
#
# Everything runs with --offline: the workspace has no external registry
# dependencies (the in-tree carbon-runtime crate supplies the PRNG,
# property-test, and bench substrates), so a bare checkout must build
# and test with no network at all. Any step that tries to reach a
# registry is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
# Bench targets in run-once smoke mode: keeps the three harness=false
# binaries compiling and their workloads alive without paying
# measurement cost.
run cargo bench --offline -- --test

echo "CI OK"

#!/usr/bin/env bash
# Hermetic CI gate for the carbon-electronics workspace.
#
# Everything runs with --offline: the workspace has no external registry
# dependencies (the in-tree carbon-runtime crate supplies the PRNG,
# property-test, and bench substrates), so a bare checkout must build
# and test with no network at all. Any step that tries to reach a
# registry is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
# Bench targets in run-once smoke mode: keeps the three harness=false
# binaries compiling and their workloads alive without paying
# measurement cost.
run cargo bench --offline -- --test

# Trace smoke: the instrumentation layer must (a) lint clean on its
# own, (b) leave report output byte-identical when enabled at any
# thread count, and (c) emit JSONL that trace-summary can aggregate.
run cargo clippy --offline -p carbon-trace --all-targets -- -D warnings
run cargo build --offline --release -p carbon-bench --bin carbon-bench
bench_bin=target/release/carbon-bench
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
echo "==> trace smoke: fig2 byte-identity + trace-summary"
CARBON_THREADS=1 "$bench_bin" fig2 > "$trace_dir/untraced.txt"
for t in 1 2 4 8; do
  CARBON_THREADS=$t CARBON_TRACE="$trace_dir/fig2-$t.jsonl" \
    "$bench_bin" fig2 > "$trace_dir/traced-$t.txt"
  diff "$trace_dir/untraced.txt" "$trace_dir/traced-$t.txt" \
    || { echo "fig2 report changed under CARBON_TRACE (threads=$t)"; exit 1; }
  [[ -s "$trace_dir/fig2-$t.jsonl" ]] \
    || { echo "no trace written at threads=$t"; exit 1; }
  "$bench_bin" trace-summary "$trace_dir/fig2-$t.jsonl" > "$trace_dir/summary-$t.jsonl"
  grep -q '"id":"trace/spice.newton_solve/dur_ns"' "$trace_dir/summary-$t.jsonl" \
    || { echo "trace summary missing newton spans (threads=$t)"; exit 1; }
done

# AC smoke: the parallel sparse AC sweep must be byte-identical to the
# single-threaded run at every thread count, traced or not, and its
# trace must aggregate through trace-summary like the DC spans do.
run cargo clippy --offline -p carbon-spice --all-targets -- -D warnings
run cargo clippy --offline -p carbon-bench --all-targets -- -D warnings
run cargo clippy --offline -p carbon-runtime --all-targets -- -D warnings
echo "==> AC smoke: ac_sweep_par byte-identity + trace-summary"
CARBON_THREADS=1 "$bench_bin" ac > "$trace_dir/ac-untraced.txt"
for t in 1 2 4 8; do
  CARBON_THREADS=$t CARBON_TRACE="$trace_dir/ac-$t.jsonl" \
    "$bench_bin" ac > "$trace_dir/ac-traced-$t.txt"
  diff "$trace_dir/ac-untraced.txt" "$trace_dir/ac-traced-$t.txt" \
    || { echo "ac report changed under CARBON_TRACE (threads=$t)"; exit 1; }
  [[ -s "$trace_dir/ac-$t.jsonl" ]] \
    || { echo "no AC trace written at threads=$t"; exit 1; }
  "$bench_bin" trace-summary "$trace_dir/ac-$t.jsonl" > "$trace_dir/ac-summary-$t.jsonl"
  grep -q '"id":"trace/spice.ac_sweep_par/dur_ns"' "$trace_dir/ac-summary-$t.jsonl" \
    || { echo "trace summary missing ac_sweep_par span (threads=$t)"; exit 1; }
done

# Convergence baseline gate: fold fig2/fig7 traces (at pinned
# CARBON_THREADS=2) into their integer rows — Newton iterations,
# repivots, sweep shapes, campaign sizes — and diff against the
# committed baselines at threshold 0. The rows are deterministic, so
# ANY growth (a convergence regression, an extra repivot) fails; the
# load-dependent /dur_ns rows are filtered out. Regenerate after an
# intentional solver change with:
#   CARBON_THREADS=2 CARBON_TRACE=/tmp/t.jsonl target/release/carbon-bench fig2 > /dev/null
#   target/release/carbon-bench trace-summary /tmp/t.jsonl | grep -v '/dur_ns' \
#     > benches/baseline/fig2-trace.jsonl              # likewise for fig7
echo "==> convergence baseline gate: fig2 + fig7 integer trace rows (threads=2)"
for fig in fig2 fig7; do
  CARBON_THREADS=2 CARBON_TRACE="$trace_dir/$fig-conv.jsonl" \
    "$bench_bin" "$fig" > /dev/null
  "$bench_bin" trace-summary "$trace_dir/$fig-conv.jsonl" | grep -v '/dur_ns' \
    > "$trace_dir/$fig-conv-summary.jsonl"
  "$bench_bin" compare "benches/baseline/$fig-trace.jsonl" \
    "$trace_dir/$fig-conv-summary.jsonl" --threshold 0 \
    || { echo "$fig convergence counters regressed against benches/baseline/$fig-trace.jsonl"; exit 1; }
done

# Transient smoke: both stepping methods must produce byte-identical
# digests (over every time point and voltage bit) at every thread
# count, traced or not, and the transient span must aggregate through
# trace-summary. The adaptive row on the stiff ramp deck doubles as the
# speedup evidence: its step count is ~2 orders below the fixed grid's.
echo "==> transient smoke: fixed/adaptive digest byte-identity + trace-summary"
CARBON_THREADS=1 "$bench_bin" tran > "$trace_dir/tran-untraced.txt"
grep -q 'deck=tran_ramp method=adaptive' "$trace_dir/tran-untraced.txt" \
  || { echo "tran report missing the adaptive ramp row"; exit 1; }
for t in 1 2 4 8; do
  CARBON_THREADS=$t CARBON_TRACE="$trace_dir/tran-$t.jsonl" \
    "$bench_bin" tran > "$trace_dir/tran-traced-$t.txt"
  diff "$trace_dir/tran-untraced.txt" "$trace_dir/tran-traced-$t.txt" \
    || { echo "tran digests changed under CARBON_TRACE (threads=$t)"; exit 1; }
  [[ -s "$trace_dir/tran-$t.jsonl" ]] \
    || { echo "no transient trace written at threads=$t"; exit 1; }
  "$bench_bin" trace-summary "$trace_dir/tran-$t.jsonl" > "$trace_dir/tran-summary-$t.jsonl"
  grep -q '"id":"trace/spice.transient/dur_ns"' "$trace_dir/tran-summary-$t.jsonl" \
    || { echo "trace summary missing spice.transient spans (threads=$t)"; exit 1; }
done

# Batch smoke: every SoA device kernel must be bit-identical to its
# scalar entry point (the subcommand asserts this per lane), and the
# full report — model digests plus the adaptive Monte-Carlo campaign's
# device count, round count, CI, and population digest — must be
# byte-identical at every thread count. The adaptive row is the
# campaign-sizing determinism gate: growth happens in whole MC_CHUNK
# rounds on per-chunk RNG streams, so thread count must not move it.
run cargo clippy --offline -p carbon-devices --all-targets -- -D warnings
echo "==> batch smoke: SoA kernel + adaptive campaign byte-identity"
for t in 1 2 4 8; do
  CARBON_THREADS=$t "$bench_bin" batch > "$trace_dir/batch-$t.txt" \
    || { echo "batch smoke failed at threads=$t"; exit 1; }
done
grep -q '^batch adaptive devices=[0-9]* rounds=[0-9]* converged=true' \
  "$trace_dir/batch-1.txt" \
  || { echo "batch report missing a converged adaptive campaign row"; exit 1; }
for t in 2 4 8; do
  diff "$trace_dir/batch-1.txt" "$trace_dir/batch-$t.txt" \
    || { echo "batch report drifted at threads=$t"; exit 1; }
done

# Serve smoke: the job service must lint clean, sustain a mixed load
# over 8 concurrent connections with zero protocol errors, keep its
# response bodies byte-identical at every CARBON_THREADS (the digest
# covers every ok response, id-sorted), surface a saturated queue as
# structured busy responses (not errors, not stalls), and emit
# serve.request spans that trace-summary can aggregate.
run cargo clippy --offline -p carbon-json --all-targets -- -D warnings
run cargo clippy --offline -p carbon-metrics --all-targets -- -D warnings
run cargo clippy --offline -p carbon-serve --all-targets -- -D warnings
echo "==> serve smoke: mixed load digest byte-identity across thread counts"
ref_digest=""
for t in 1 2 4 8; do
  CARBON_THREADS=$t "$bench_bin" serve-load \
    --connections 8 --jobs 1000 --queue-depth 1024 --digest \
    > "$trace_dir/serve-$t.txt" 2> "$trace_dir/serve-$t.log" \
    || { echo "serve-load failed at threads=$t"; cat "$trace_dir/serve-$t.log"; exit 1; }
  digest=$(grep '^digest=' "$trace_dir/serve-$t.txt")
  [[ -n "$digest" ]] || { echo "serve-load printed no digest (threads=$t)"; exit 1; }
  if [[ -z "$ref_digest" ]]; then
    ref_digest="$digest"
  elif [[ "$digest" != "$ref_digest" ]]; then
    echo "serve responses drifted at threads=$t: $digest vs $ref_digest"
    exit 1
  fi
done
echo "==> serve smoke: saturated queue answers busy, run still clean"
CARBON_THREADS=2 "$bench_bin" serve-load \
  --connections 8 --jobs 200 --workers 1 --queue-depth 1 \
  > /dev/null 2> "$trace_dir/serve-busy.log" \
  || { echo "serve-load under saturation failed"; cat "$trace_dir/serve-busy.log"; exit 1; }
busy_count=$(grep -o 'busy [0-9]*' "$trace_dir/serve-busy.log" | head -1 | cut -d' ' -f2)
[[ "${busy_count:-0}" -gt 0 ]] \
  || { echo "tight queue produced no busy responses"; cat "$trace_dir/serve-busy.log"; exit 1; }
echo "==> serve smoke: serve.request spans aggregate through trace-summary"
CARBON_THREADS=2 CARBON_TRACE="$trace_dir/serve-trace.jsonl" "$bench_bin" serve-load \
  --connections 4 --jobs 100 --queue-depth 128 \
  > "$trace_dir/serve-rows.jsonl" 2> /dev/null \
  || { echo "traced serve-load failed"; exit 1; }
"$bench_bin" trace-summary "$trace_dir/serve-trace.jsonl" > "$trace_dir/serve-summary.jsonl"
grep -q '"id":"trace/serve.request/dur_ns"' "$trace_dir/serve-summary.jsonl" \
  || { echo "trace summary missing serve.request spans"; exit 1; }
grep -q '"id":"trace/counter/serve.accepted"' "$trace_dir/serve-summary.jsonl" \
  || { echo "trace summary missing serve.accepted counter"; exit 1; }
grep -q '"id":"trace/gauge/serve.queue_depth"' "$trace_dir/serve-summary.jsonl" \
  || { echo "trace summary missing serve.queue_depth gauge"; exit 1; }

# Metrics smoke: the same traced run's compare-JSONL rows carry the
# server's own `stats` snapshot. Gate on server-side health: every job
# admitted, none timed out, one warmup ping per connection, and every
# admission classified exactly once by the response cache — misses
# fill the per-kind solve-latency histograms, hits the dedicated
# `serve.cache.hit_latency_ns` histogram, and the two partitions sum
# back to `accepted`.
echo "==> metrics smoke: stats snapshot accounts for every job"
row_val() {
  grep "\"id\":\"$1\"" "${2:-$trace_dir/serve-rows.jsonl}" | head -1 \
    | sed 's/.*"median_ns":\([0-9]*\).*/\1/'
}
accepted=$(row_val 'serve/stats/serve.accepted')
timed_out=$(row_val 'serve/stats/serve.timed_out')
pings=$(row_val 'serve/stats/serve.ping')
hits=$(row_val 'serve/stats/serve.cache.hit')
misses=$(row_val 'serve/stats/serve.cache.miss')
[[ "${accepted:-0}" -eq 100 ]] \
  || { echo "stats snapshot: expected 100 accepted, got '${accepted:-}'"; exit 1; }
[[ "${timed_out:-1}" -eq 0 ]] \
  || { echo "stats snapshot: ${timed_out:-?} job(s) timed out"; exit 1; }
[[ "${pings:-0}" -eq 4 ]] \
  || { echo "stats snapshot: expected 4 warmup pings, got '${pings:-}'"; exit 1; }
[[ $(( ${hits:-0} + ${misses:-0} )) -eq "${accepted:-0}" ]] \
  || { echo "cache classification broke: hits=${hits:-?} + misses=${misses:-?} != accepted=${accepted:-?}"; exit 1; }
lat_total=$(grep '"id":"serve/stats/serve\.latency_ns\.[a-z0-9_]*/count"' \
    "$trace_dir/serve-rows.jsonl" \
  | sed 's/.*"median_ns":\([0-9]*\).*/\1/' | awk '{s+=$1} END {print s+0}')
[[ "$lat_total" -eq "${misses:-0}" ]] \
  || { echo "solve-latency histogram totals ($lat_total) != cache misses (${misses:-?})"; exit 1; }
hit_hist=$(row_val 'serve/stats/serve.cache.hit_latency_ns/count')
[[ "${hit_hist:-0}" -eq "${hits:-0}" ]] \
  || { echo "hit-latency histogram count (${hit_hist:-?}) != cache hits (${hits:-?})"; exit 1; }

# Cache smoke: the same 200-job mixed deck set twice over one server.
# Pass two replays exactly the keys pass one inserted, so its hit rate
# must be near-total and both passes' response digests byte-identical —
# the cache may only ever change latency, never bytes. The cache rows
# are also diffed against a committed baseline at threshold 0: the
# workload is deterministic and single-flight guarantees exactly one
# solve per distinct key, so the lifetime hit/miss split is exact and
# ANY drift (key canonicalisation change, a second solve slipping past
# the flight map) fails. Regenerate after an intentional workload or
# key-schema change with:
#   CARBON_THREADS=2 target/release/carbon-bench serve-load \
#     --connections 4 --jobs 200 --passes 2 --queue-depth 1024 --digest \
#     2>/dev/null | grep '"id":"serve/cache_' > benches/baseline/serve-cache.jsonl
echo "==> cache smoke: warm pass all-hit, digests identical, accounting exact"
CARBON_THREADS=2 "$bench_bin" serve-load \
  --connections 4 --jobs 200 --passes 2 --queue-depth 1024 --digest \
  > "$trace_dir/cache-rows.jsonl" 2> "$trace_dir/cache-smoke.log" \
  || { echo "cache smoke serve-load failed"; cat "$trace_dir/cache-smoke.log"; exit 1; }
pass0=$(grep '^pass0_digest=' "$trace_dir/cache-rows.jsonl" | cut -d= -f2)
pass1=$(grep '^pass1_digest=' "$trace_dir/cache-rows.jsonl" | cut -d= -f2)
[[ -n "$pass0" && "$pass0" == "$pass1" ]] \
  || { echo "cache smoke: pass digests differ ('$pass0' vs '$pass1')"; exit 1; }
hit_rate=$(row_val 'serve/cache_hit_rate' "$trace_dir/cache-rows.jsonl")
[[ "${hit_rate:-0}" -gt 900 ]] \
  || { echo "cache smoke: second-pass hit rate ${hit_rate:-0} per-mille, want > 900"; exit 1; }
hits=$(row_val 'serve/cache_hits' "$trace_dir/cache-rows.jsonl")
misses=$(row_val 'serve/cache_misses' "$trace_dir/cache-rows.jsonl")
accepted=$(row_val 'serve/stats/serve.accepted' "$trace_dir/cache-rows.jsonl")
[[ "${accepted:-0}" -eq 400 && $(( ${hits:-0} + ${misses:-0} )) -eq "${accepted:-0}" ]] \
  || { echo "cache smoke: accounting broke (hits=${hits:-?} misses=${misses:-?} accepted=${accepted:-?})"; exit 1; }
grep '"id":"serve/cache_' "$trace_dir/cache-rows.jsonl" > "$trace_dir/cache-compare.jsonl"
"$bench_bin" compare "benches/baseline/serve-cache.jsonl" \
  "$trace_dir/cache-compare.jsonl" --threshold 0 \
  || { echo "serve cache rows drifted against benches/baseline/serve-cache.jsonl"; exit 1; }

# Opt-in benchmark regression gate: measure the solver, transient, and
# device-batch groups for real and diff them against the committed baselines,
# failing on >10 % median regressions. Off by default — timings are
# only meaningful on a quiet machine. Regenerate a baseline with:
#   cargo bench --offline -p carbon-bench --bench <group>
#   cp target/carbon-bench/<group>.jsonl benches/baseline/<group>.jsonl
if [[ "${CARBON_BENCH_COMPARE:-0}" == "1" ]]; then
  for group in solver tran device_batch; do
    run cargo bench --offline -p carbon-bench --bench "$group"
    run cargo run --offline --release -p carbon-bench --bin carbon-bench -- \
      compare "benches/baseline/$group.jsonl" "target/carbon-bench/$group.jsonl"
  done
fi

echo "CI OK"

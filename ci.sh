#!/usr/bin/env bash
# Hermetic CI gate for the carbon-electronics workspace.
#
# Everything runs with --offline: the workspace has no external registry
# dependencies (the in-tree carbon-runtime crate supplies the PRNG,
# property-test, and bench substrates), so a bare checkout must build
# and test with no network at all. Any step that tries to reach a
# registry is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
# Bench targets in run-once smoke mode: keeps the three harness=false
# binaries compiling and their workloads alive without paying
# measurement cost.
run cargo bench --offline -- --test

# Trace smoke: the instrumentation layer must (a) lint clean on its
# own, (b) leave report output byte-identical when enabled at any
# thread count, and (c) emit JSONL that trace-summary can aggregate.
run cargo clippy --offline -p carbon-trace --all-targets -- -D warnings
run cargo build --offline --release -p carbon-bench --bin carbon-bench
bench_bin=target/release/carbon-bench
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
echo "==> trace smoke: fig2 byte-identity + trace-summary"
CARBON_THREADS=1 "$bench_bin" fig2 > "$trace_dir/untraced.txt"
for t in 1 2 4 8; do
  CARBON_THREADS=$t CARBON_TRACE="$trace_dir/fig2-$t.jsonl" \
    "$bench_bin" fig2 > "$trace_dir/traced-$t.txt"
  diff "$trace_dir/untraced.txt" "$trace_dir/traced-$t.txt" \
    || { echo "fig2 report changed under CARBON_TRACE (threads=$t)"; exit 1; }
  [[ -s "$trace_dir/fig2-$t.jsonl" ]] \
    || { echo "no trace written at threads=$t"; exit 1; }
  "$bench_bin" trace-summary "$trace_dir/fig2-$t.jsonl" > "$trace_dir/summary-$t.jsonl"
  grep -q '"id":"trace/spice.newton_solve/dur_ns"' "$trace_dir/summary-$t.jsonl" \
    || { echo "trace summary missing newton spans (threads=$t)"; exit 1; }
done

# AC smoke: the parallel sparse AC sweep must be byte-identical to the
# single-threaded run at every thread count, traced or not, and its
# trace must aggregate through trace-summary like the DC spans do.
run cargo clippy --offline -p carbon-spice --all-targets -- -D warnings
run cargo clippy --offline -p carbon-bench --all-targets -- -D warnings
run cargo clippy --offline -p carbon-runtime --all-targets -- -D warnings
echo "==> AC smoke: ac_sweep_par byte-identity + trace-summary"
CARBON_THREADS=1 "$bench_bin" ac > "$trace_dir/ac-untraced.txt"
for t in 1 2 4 8; do
  CARBON_THREADS=$t CARBON_TRACE="$trace_dir/ac-$t.jsonl" \
    "$bench_bin" ac > "$trace_dir/ac-traced-$t.txt"
  diff "$trace_dir/ac-untraced.txt" "$trace_dir/ac-traced-$t.txt" \
    || { echo "ac report changed under CARBON_TRACE (threads=$t)"; exit 1; }
  [[ -s "$trace_dir/ac-$t.jsonl" ]] \
    || { echo "no AC trace written at threads=$t"; exit 1; }
  "$bench_bin" trace-summary "$trace_dir/ac-$t.jsonl" > "$trace_dir/ac-summary-$t.jsonl"
  grep -q '"id":"trace/spice.ac_sweep_par/dur_ns"' "$trace_dir/ac-summary-$t.jsonl" \
    || { echo "trace summary missing ac_sweep_par span (threads=$t)"; exit 1; }
done

# Opt-in benchmark regression gate: measure the solver group for real
# and diff it against the committed baseline, failing on >10 % median
# regressions. Off by default — timings are only meaningful on a quiet
# machine. Regenerate the baseline with:
#   cargo bench --offline -p carbon-bench --bench solver
#   cp target/carbon-bench/solver.jsonl benches/baseline/solver.jsonl
if [[ "${CARBON_BENCH_COMPARE:-0}" == "1" ]]; then
  run cargo bench --offline -p carbon-bench --bench solver
  run cargo run --offline --release -p carbon-bench --bin carbon-bench -- \
    compare benches/baseline/solver.jsonl target/carbon-bench/solver.jsonl
fi

echo "CI OK"

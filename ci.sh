#!/usr/bin/env bash
# Hermetic CI gate for the carbon-electronics workspace.
#
# Everything runs with --offline: the workspace has no external registry
# dependencies (the in-tree carbon-runtime crate supplies the PRNG,
# property-test, and bench substrates), so a bare checkout must build
# and test with no network at all. Any step that tries to reach a
# registry is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
# Bench targets in run-once smoke mode: keeps the three harness=false
# binaries compiling and their workloads alive without paying
# measurement cost.
run cargo bench --offline -- --test

# Opt-in benchmark regression gate: measure the solver group for real
# and diff it against the committed baseline, failing on >10 % median
# regressions. Off by default — timings are only meaningful on a quiet
# machine. Regenerate the baseline with:
#   cargo bench --offline -p carbon-bench --bench solver
#   cp target/carbon-bench/solver.jsonl benches/baseline/solver.jsonl
if [[ "${CARBON_BENCH_COMPARE:-0}" == "1" ]]; then
  run cargo bench --offline -p carbon-bench --bench solver
  run cargo run --offline --release -p carbon-bench --bin carbon-bench -- \
    compare benches/baseline/solver.jsonl target/carbon-bench/solver.jsonl
fi

echo "CI OK"
